//! The controller core: switch sessions, event pump, app dispatch.
//!
//! Per §3.4 the controller is *stateless* about deployments: everything it
//! needs (logical/physical topologies, agent registry) is read from the
//! central coordinator, and flow rules are regenerated from that state.
//! What it does keep is operational plumbing: the per-switch control
//! channels, latest stats snapshots, and the registered control-plane apps.

use crate::apps::ControlPlaneApp;
use crate::control::{ControlTuple, CONTROLLER_TASK};
use crate::rules::build_rules;
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_coordinator::global::GlobalState;
use typhoon_diag::{rank, DiagMutex as Mutex, DiagRwLock as RwLock};
use typhoon_model::{AppId, HostId, LogicalTopology, PhysicalTopology, TaskId};
use typhoon_net::{Depacketizer, Frame, MacAddr, Packetizer};
use typhoon_openflow::{
    wire, DatapathId, FlowMod, FlowStats, OfMessage, PortNo, PortStats, PortStatusReason,
};
use typhoon_switch::ControlChannel;
use typhoon_tuple::ser::{encode_tuple_vec, SerStats};
use typhoon_tuple::Tuple;

/// One connected switch: its host, datapath ID and control channel.
#[derive(Debug, Clone)]
pub struct SwitchBinding {
    /// The compute host the switch runs on.
    pub host: HostId,
    /// The switch's datapath ID.
    pub dpid: DatapathId,
    /// The control channel (encoded OpenFlow both ways).
    pub channel: ControlChannel,
}

struct CtlInner {
    global: GlobalState,
    switches: RwLock<BTreeMap<HostId, SwitchBinding>>,
    apps: Mutex<Vec<Box<dyn ControlPlaneApp>>>,
    port_stats: Mutex<HashMap<HostId, Vec<PortStats>>>,
    flow_stats: Mutex<HashMap<HostId, Vec<FlowStats>>>,
    depacketizers: Mutex<HashMap<HostId, Depacketizer>>,
    barrier_waiters: Mutex<HashMap<u32, crossbeam::channel::Sender<()>>>,
    ser: Arc<SerStats>,
    packetizer: Packetizer,
    next_xid: AtomicU32,
    shutdown: AtomicBool,
    /// HA write-through: successful rule sends are recorded here so a
    /// successor leader can re-install them (None outside an HA plane).
    ledger: Option<Arc<crate::ha::RuleLedger>>,
}

/// The Typhoon SDN controller.
#[derive(Clone)]
pub struct Controller {
    inner: Arc<CtlInner>,
}

impl Controller {
    /// Creates a controller bound to the cluster's coordinator state.
    pub fn new(global: GlobalState) -> Self {
        Self::build(global, None)
    }

    /// Creates a controller that write-through-records every rule it
    /// successfully installs into `ledger` — the HA replica constructor
    /// (a deposed leader's sends fail, so it records nothing).
    pub fn with_ledger(global: GlobalState, ledger: Arc<crate::ha::RuleLedger>) -> Self {
        Self::build(global, Some(ledger))
    }

    fn build(global: GlobalState, ledger: Option<Arc<crate::ha::RuleLedger>>) -> Self {
        Controller {
            inner: Arc::new(CtlInner {
                global,
                switches: RwLock::with_rank(
                    rank::CONTROLLER,
                    "controller.switches",
                    BTreeMap::new(),
                ),
                apps: Mutex::with_rank(rank::CTRL_APPS, "controller.apps", Vec::new()),
                port_stats: Mutex::with_rank(
                    rank::CTRL_PORT_STATS,
                    "controller.port_stats",
                    HashMap::new(),
                ),
                flow_stats: Mutex::with_rank(
                    rank::CTRL_FLOW_STATS,
                    "controller.flow_stats",
                    HashMap::new(),
                ),
                depacketizers: Mutex::with_rank(
                    rank::CTRL_DEPACKETIZERS,
                    "controller.depacketizers",
                    HashMap::new(),
                ),
                barrier_waiters: Mutex::with_rank(
                    rank::CTRL_BARRIER_WAITERS,
                    "controller.barrier_waiters",
                    HashMap::new(),
                ),
                ser: SerStats::shared(),
                packetizer: Packetizer::default(),
                next_xid: AtomicU32::new(1),
                shutdown: AtomicBool::new(false),
                ledger,
            }),
        }
    }

    /// The coordinator-backed global state (Table 1).
    pub fn global(&self) -> &GlobalState {
        &self.inner.global
    }

    /// Serialization meter for controller-generated control tuples.
    pub fn ser_stats(&self) -> &Arc<SerStats> {
        &self.inner.ser
    }

    /// Registers a switch session (the OpenFlow handshake of a real
    /// deployment, collapsed to channel registration here).
    pub fn register_switch(&self, host: HostId, dpid: DatapathId, channel: ControlChannel) {
        self.inner.switches.write().insert(
            host,
            SwitchBinding {
                host,
                dpid,
                channel,
            },
        );
    }

    /// Registers a control-plane application (§4).
    pub fn add_app(&self, app: Box<dyn ControlPlaneApp>) {
        self.inner.apps.lock().push(app);
    }

    /// Hosts with a registered switch.
    pub fn hosts(&self) -> Vec<HostId> {
        self.inner.switches.read().keys().copied().collect()
    }

    /// Drops every switch binding — the crash path of an HA replica. The
    /// control channels close with the bindings; switches that have seen
    /// a real leader degrade to headless forwarding until the next one
    /// connects.
    pub fn unregister_all(&self) {
        self.inner.switches.write().clear();
    }

    fn send_to_switch(&self, host: HostId, msg: &OfMessage) -> bool {
        // Clone the sender and release the switches lock before the
        // blocking send: a switch with a full inbox must not stall every
        // thread that needs the switch table (TL008).
        let tx = {
            let switches = self.inner.switches.read();
            match switches.get(&host) {
                Some(b) => b.channel.to_switch.clone(),
                None => return false,
            }
        };
        let ok = tx.send(wire::encode(msg)).is_ok();
        if ok {
            if let Some(ledger) = &self.inner.ledger {
                ledger.record(host, msg);
            }
        }
        ok
    }

    /// Installs the full Table 3 rule plan for a scheduled topology
    /// (§3.2 step (iii), "Network setup"), then fences each switch with a
    /// barrier so callers know the rules are active. Returns `false` when
    /// any send or barrier fails — the leader may have died mid-install;
    /// the caller should retry against the next leader.
    pub fn install_topology(&self, logical: &LogicalTopology, physical: &PhysicalTopology) -> bool {
        let plan = build_rules(logical, physical);
        let mut ok = true;
        for (host, groups) in &plan.groups {
            for gm in groups {
                ok &= self.send_to_switch(*host, &OfMessage::GroupMod(gm.clone()));
            }
        }
        for (host, flows) in &plan.flows {
            for fm in flows {
                ok &= self.send_to_switch(*host, &OfMessage::FlowMod(fm.clone()));
            }
        }
        let hosts: Vec<HostId> = plan.flows.keys().copied().collect();
        for host in hosts {
            ok &= self.sync_switch(host, Duration::from_secs(5));
        }
        ok
    }

    /// Removes every rule of a topology by sending per-rule strict deletes.
    pub fn uninstall_topology(&self, logical: &LogicalTopology, physical: &PhysicalTopology) {
        let plan = build_rules(logical, physical);
        for (host, flows) in &plan.flows {
            for fm in flows {
                let mut del = FlowMod::delete(fm.matcher);
                del.priority = fm.priority;
                self.send_to_switch(*host, &OfMessage::FlowMod(del));
            }
        }
    }

    /// Sends one raw `FlowMod` to a host's switch (used by apps).
    pub fn send_flow_mod(&self, host: HostId, fm: FlowMod) -> bool {
        self.send_to_switch(host, &OfMessage::FlowMod(fm))
    }

    /// Sends one raw `GroupMod` to a host's switch (used by apps).
    pub fn send_group_mod(&self, host: HostId, gm: typhoon_openflow::GroupMod) -> bool {
        self.send_to_switch(host, &OfMessage::GroupMod(gm))
    }

    /// Fences a switch: sends a barrier and waits for its reply (or the
    /// timeout). The reply may be consumed by any pumping thread (the
    /// spawned controller loop or this caller) — a waiter registry routes
    /// it back here either way.
    pub fn sync_switch(&self, host: HostId, timeout: Duration) -> bool {
        let xid = self.inner.next_xid.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.inner.barrier_waiters.lock().insert(xid, tx);
        if !self.send_to_switch(host, &OfMessage::Barrier { xid }) {
            self.inner.barrier_waiters.lock().remove(&xid);
            return false;
        }
        let deadline = Instant::now() + timeout;
        loop {
            if rx.try_recv().is_ok() {
                return true;
            }
            // Pump ourselves too, so fencing works without a spawned loop.
            self.pump_once(host);
            if Instant::now() > deadline {
                self.inner.barrier_waiters.lock().remove(&xid);
                return false;
            }
            std::thread::sleep(Duration::from_micros(100)); // LINT: allow-sleep(barrier poll backoff, bounded by the deadline check above)
        }
    }

    /// Injects a control tuple to one worker via `PacketOut` (§3.4).
    pub fn send_control(&self, app: AppId, task: TaskId, ct: &ControlTuple) -> bool {
        let physical = match self.find_physical_for_task(app, task) {
            Some(p) => p,
            None => return false,
        };
        let assignment = match physical.assignment(task) {
            Some(a) => a.clone(),
            None => return false,
        };
        let tuple = ct.to_tuple(CONTROLLER_TASK);
        let blob = Bytes::from(encode_tuple_vec(&tuple, &self.inner.ser));
        let dst = MacAddr::worker(app.0, task);
        let frames =
            self.inner
                .packetizer
                .pack(MacAddr::CONTROLLER, dst, std::slice::from_ref(&blob));
        for frame in frames {
            let ok = self.send_to_switch(
                assignment.host,
                &OfMessage::PacketOut {
                    in_port: PortNo::CONTROLLER,
                    frame: frame.encode(),
                },
            );
            if !ok {
                return false;
            }
        }
        true
    }

    /// Injects a control tuple to many workers.
    pub fn send_control_many(&self, app: AppId, tasks: &[TaskId], ct: &ControlTuple) -> usize {
        tasks
            .iter()
            .filter(|&&t| self.send_control(app, t, ct))
            .count()
    }

    fn find_physical_for_task(&self, app: AppId, task: TaskId) -> Option<PhysicalTopology> {
        for name in self.inner.global.list_topologies().ok()? {
            if let Ok(p) = self.inner.global.get_physical(&name) {
                if p.app == app && p.assignment(task).is_some() {
                    return Some(p);
                }
            }
        }
        None
    }

    /// Fires async stats requests at one switch (answers land in the
    /// caches read by [`Controller::port_stats`]/[`Controller::flow_stats`]).
    pub fn request_stats(&self, host: HostId) {
        self.send_to_switch(host, &OfMessage::PortStatsRequest);
        self.send_to_switch(host, &OfMessage::FlowStatsRequest);
    }

    /// Latest port stats received from `host`.
    pub fn port_stats(&self, host: HostId) -> Vec<PortStats> {
        self.inner
            .port_stats
            .lock()
            .get(&host)
            .cloned()
            .unwrap_or_default()
    }

    /// Latest flow stats received from `host`.
    pub fn flow_stats(&self, host: HostId) -> Vec<FlowStats> {
        self.inner
            .flow_stats
            .lock()
            .get(&host)
            .cloned()
            .unwrap_or_default()
    }

    /// Drains pending switch events, dispatching to apps. Returns the
    /// number of messages handled.
    pub fn pump(&self) -> usize {
        let hosts = self.hosts();
        let mut handled = 0;
        for host in hosts {
            while self.pump_once(host) {
                handled += 1;
            }
        }
        handled
    }

    /// Handles at most one pending message from `host`; returns whether
    /// one was handled.
    fn pump_once(&self, host: HostId) -> bool {
        let raw: Option<Bytes> = {
            let switches = self.inner.switches.read();
            match switches.get(&host) {
                Some(b) => b.channel.from_switch.try_recv().ok(),
                None => None,
            }
        };
        let raw = match raw {
            Some(r) => r,
            None => return false,
        };
        let msg = match wire::decode(raw) {
            Ok((m, _)) => m,
            Err(_) => return true,
        };
        match &msg {
            OfMessage::BarrierReply { xid } => {
                if let Some(tx) = self.inner.barrier_waiters.lock().remove(xid) {
                    let _ = tx.send(());
                }
            }
            OfMessage::PortStatsReply(stats) => {
                self.inner.port_stats.lock().insert(host, stats.clone());
            }
            OfMessage::FlowStatsReply(stats) => {
                self.inner.flow_stats.lock().insert(host, stats.clone());
            }
            OfMessage::PortStatus { reason, port } => {
                self.dispatch_port_status(host, *reason, *port);
            }
            OfMessage::PacketIn { frame, .. } => {
                if let Ok(f) = Frame::decode(frame.clone()) {
                    self.dispatch_packet_in(host, f);
                }
            }
            _ => {}
        }
        true
    }

    fn dispatch_port_status(&self, host: HostId, reason: PortStatusReason, port: PortNo) {
        let mut apps = self.inner.apps.lock();
        for app in apps.iter_mut() {
            app.on_port_status(self, host, reason, port);
        }
    }

    fn dispatch_packet_in(&self, host: HostId, frame: Frame) {
        // Reassemble tuples (control responses are packetized like data).
        let blobs = {
            let mut depkts = self.inner.depacketizers.lock();
            match depkts.entry(host).or_default().push(&frame) {
                Ok(b) => b,
                Err(_) => return,
            }
        };
        for (src, blob) in blobs {
            let tuple: Tuple = match typhoon_tuple::ser::decode_tuple(&blob, &self.inner.ser) {
                Ok((t, _)) => t,
                Err(_) => continue,
            };
            if let Some(ControlTuple::MetricResp {
                request_id,
                task,
                metrics,
            }) = ControlTuple::from_tuple(&tuple)
            {
                // The worker's MAC prefix identifies its application.
                let app_id = AppId(src.app());
                let mut apps = self.inner.apps.lock();
                for app in apps.iter_mut() {
                    app.on_metric_resp(self, app_id, task, request_id, &metrics);
                }
            }
        }
        let mut apps = self.inner.apps.lock();
        for app in apps.iter_mut() {
            app.on_packet_in(self, host, &frame);
        }
    }

    /// Ticks every registered app (periodic work: stats polls, scaling
    /// decisions, weight retuning).
    pub fn tick_apps(&self) {
        let mut apps = self.inner.apps.lock();
        for app in apps.iter_mut() {
            app.on_tick(self);
        }
    }

    /// Spawns the controller loop: pump events continuously, tick apps at
    /// `tick_interval`.
    pub fn spawn(&self, tick_interval: Duration) -> ControllerHandle {
        let ctl = self.clone();
        let thread = std::thread::Builder::new()
            .name("sdn-controller".into())
            .spawn(move || {
                let mut last_tick = Instant::now();
                while !ctl.inner.shutdown.load(Ordering::Acquire) {
                    let handled = ctl.pump();
                    if last_tick.elapsed() >= tick_interval {
                        last_tick = Instant::now();
                        ctl.tick_apps();
                    }
                    if handled == 0 {
                        std::thread::sleep(Duration::from_micros(200)); // LINT: allow-sleep(idle backoff in the controller event loop when no messages were handled)
                    }
                }
            })
            .expect("spawn controller");
        ControllerHandle {
            controller: self.clone(),
            thread: Some(thread),
        }
    }

    /// Requests the controller loop to stop.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Release);
    }
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Controller({} switches)",
            self.inner.switches.read().len()
        )
    }
}

/// Join handle for a spawned controller loop.
pub struct ControllerHandle {
    controller: Controller,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ControllerHandle {
    /// Stops the loop and joins the thread.
    pub fn stop(mut self) {
        self.controller.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ControllerHandle {
    fn drop(&mut self) {
        self.controller.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_coordinator::Coordinator;
    use typhoon_model::logical::word_count_example;
    use typhoon_model::{HostInfo, LocalityScheduler, Scheduler};
    use typhoon_switch::{Switch, SwitchConfig};

    fn setup_one_host() -> (Controller, Switch, GlobalState) {
        let global = GlobalState::new(Coordinator::new());
        let ctl = Controller::new(global.clone());
        let (sw, ch) = Switch::new(SwitchConfig::new(0));
        ctl.register_switch(HostId(0), sw.dpid(), ch);
        (ctl, sw, global)
    }

    fn deploy_word_count(ctl: &Controller, sw: &Switch, global: &GlobalState) -> PhysicalTopology {
        let logical = word_count_example();
        let phys = LocalityScheduler
            .schedule(AppId(1), &logical, &[HostInfo::new(0, "h0", 8)])
            .unwrap();
        global.set_logical(&logical).unwrap();
        global.set_physical(&phys).unwrap();
        // Pre-attach the workers' ports so rules have endpoints.
        for a in &phys.assignments {
            let _wp = sw.attach_worker(PortNo(a.switch_port));
            std::mem::forget(_wp); // keep rings alive for the test
        }
        // Install concurrently with a helper thread driving the switch,
        // because install_topology blocks on a barrier.
        let sw2 = sw.clone();
        let done = Arc::new(AtomicBool::new(false));
        let done2 = done.clone();
        let driver = std::thread::spawn(move || {
            while !done2.load(Ordering::Acquire) {
                sw2.process_round();
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        ctl.install_topology(&word_count_example(), &phys);
        done.store(true, Ordering::Release);
        driver.join().unwrap();
        phys
    }

    #[test]
    fn install_topology_programs_rules_and_fences() {
        let (ctl, sw, global) = setup_one_host();
        deploy_word_count(&ctl, &sw, &global);
        assert!(sw.rule_count() > 6, "data + control rules installed");
    }

    #[test]
    fn uninstall_topology_removes_rules() {
        let (ctl, sw, global) = setup_one_host();
        let phys = deploy_word_count(&ctl, &sw, &global);
        let before = sw.rule_count();
        ctl.uninstall_topology(&word_count_example(), &phys);
        for _ in 0..10 {
            sw.process_round();
        }
        assert!(sw.rule_count() < before);
        assert_eq!(sw.rule_count(), 0, "strict deletes cover the whole plan");
    }

    #[test]
    fn stats_round_trip_into_cache() {
        let (ctl, sw, global) = setup_one_host();
        deploy_word_count(&ctl, &sw, &global);
        ctl.request_stats(HostId(0));
        sw.process_round();
        ctl.pump();
        assert!(!ctl.port_stats(HostId(0)).is_empty());
        assert!(!ctl.flow_stats(HostId(0)).is_empty());
    }

    #[test]
    fn send_control_reaches_worker_port() {
        let global = GlobalState::new(Coordinator::new());
        let ctl = Controller::new(global.clone());
        let (sw, ch) = Switch::new(SwitchConfig::new(0));
        ctl.register_switch(HostId(0), sw.dpid(), ch);
        let logical = word_count_example();
        let phys = LocalityScheduler
            .schedule(AppId(1), &logical, &[HostInfo::new(0, "h0", 8)])
            .unwrap();
        global.set_logical(&logical).unwrap();
        global.set_physical(&phys).unwrap();
        // Attach only the target worker's port and keep its endpoints.
        let target = phys.tasks_of("split")[0];
        let port = PortNo(phys.assignment(target).unwrap().switch_port);
        let wp = sw.attach_worker(port);
        // Install only the control rules by installing the whole plan
        // (driver thread for the barrier).
        let sw2 = sw.clone();
        let done = Arc::new(AtomicBool::new(false));
        let done2 = done.clone();
        let driver = std::thread::spawn(move || {
            while !done2.load(Ordering::Acquire) {
                sw2.process_round();
                std::thread::sleep(Duration::from_micros(100));
            }
        });
        ctl.install_topology(&logical, &phys);
        assert!(ctl.send_control(AppId(1), target, &ControlTuple::BatchSize { size: 250 }));
        // Wait for the frame to arrive at the worker port.
        let deadline = Instant::now() + Duration::from_secs(5);
        let frame = loop {
            if let Ok(Some(f)) = wp.rx.pop() {
                break f;
            }
            assert!(Instant::now() < deadline, "control tuple never arrived");
            std::thread::sleep(Duration::from_micros(100));
        };
        done.store(true, Ordering::Release);
        driver.join().unwrap();
        // Depacketize and decode it back into the control tuple.
        let mut d = Depacketizer::new();
        let blobs = d.push(&frame).unwrap();
        assert_eq!(blobs.len(), 1);
        let stats = SerStats::default();
        let (tuple, _) = typhoon_tuple::ser::decode_tuple(&blobs[0].1, &stats).unwrap();
        assert_eq!(
            ControlTuple::from_tuple(&tuple),
            Some(ControlTuple::BatchSize { size: 250 })
        );
    }

    #[test]
    fn send_control_to_unknown_task_fails_cleanly() {
        let (ctl, _sw, _global) = setup_one_host();
        assert!(!ctl.send_control(AppId(9), TaskId(1), &ControlTuple::Signal));
    }
}
