//! Control tuples — Table 2 of the paper.
//!
//! Control tuples "have the same tuple format as data tuples" but use
//! dedicated stream IDs and carry reconfiguration payloads in their value
//! list (§3.3.2). They are injected by the SDN controller through
//! `PacketOut` messages and consumed by the worker framework layer; only
//! `METRIC_RESP` travels the other way (worker → controller via
//! `PacketIn`).

use typhoon_model::{Grouping, TaskId};
use typhoon_tuple::tuple::TupleMeta;
use typhoon_tuple::{MessageId, StreamId, Tuple, Value};

/// A decoded control tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlTuple {
    /// `ROUTING`: update a worker's routing state for one downstream node.
    /// `next_hops = None` leaves the hop set unchanged (policy-only
    /// update); `policy = None` leaves the policy unchanged (hop-only
    /// update). Exactly the two update shapes §3.3.2 describes.
    Routing {
        /// The downstream logical node whose edge is being reconfigured.
        downstream: String,
        /// Replacement `nextHops`, if changing.
        next_hops: Option<Vec<TaskId>>,
        /// Replacement policy (with pre-resolved key indices), if changing.
        policy: Option<(Grouping, Vec<usize>)>,
    },
    /// `SIGNAL`: flush a stateful worker's in-memory cache (Listing 2).
    Signal,
    /// `METRIC_REQ`: request the worker's internal statistics.
    MetricReq {
        /// Correlation ID echoed in the response.
        request_id: u64,
    },
    /// `METRIC_RESP`: the worker's statistics, as (name, value) pairs
    /// (e.g. queue depth, emitted tuples).
    MetricResp {
        /// Correlation ID from the request.
        request_id: u64,
        /// Responding task.
        task: TaskId,
        /// Named counters/gauges.
        metrics: Vec<(String, i64)>,
    },
    /// `INPUT_RATE`: cap the worker's input processing rate
    /// (tuples/second; 0 removes the cap).
    InputRate {
        /// The cap.
        tuples_per_sec: u32,
    },
    /// `ACTIVATE`: unthrottle the first workers of a topology.
    Activate,
    /// `DEACTIVATE`: throttle the first workers of a topology.
    Deactivate,
    /// `BATCH_SIZE`: retune the I/O layer batch size.
    BatchSize {
        /// New batch size (tuples).
        size: u32,
    },
    /// `REPLAY`: crash recovery — the recovery manager tells a spout to
    /// fail-and-replay every pending (un-acked) root *now* instead of
    /// waiting out the ack timeout, so a recovered stateful task is
    /// refilled promptly (§4, Fig. 10).
    Replay,
    /// `RESTATE`: crash recovery — a surviving stateful bolt re-emits its
    /// full snapshot downstream. Emissions it made toward a dead task were
    /// lost with that task, and the dedup ledger (correctly) refuses to
    /// re-fold the replays that would have regenerated them; the snapshot
    /// re-emission re-converges latest-wins consumers.
    Restate,
}

impl ControlTuple {
    /// The stream ID this control tuple travels on.
    pub fn stream(&self) -> StreamId {
        match self {
            ControlTuple::Routing { .. } => StreamId::CTRL_ROUTING,
            ControlTuple::Signal => StreamId::CTRL_SIGNAL,
            ControlTuple::MetricReq { .. } => StreamId::CTRL_METRIC_REQ,
            ControlTuple::MetricResp { .. } => StreamId::CTRL_METRIC_RESP,
            ControlTuple::InputRate { .. } => StreamId::CTRL_INPUT_RATE,
            ControlTuple::Activate => StreamId::CTRL_ACTIVATE,
            ControlTuple::Deactivate => StreamId::CTRL_DEACTIVATE,
            ControlTuple::BatchSize { .. } => StreamId::CTRL_BATCH_SIZE,
            ControlTuple::Replay => StreamId::CTRL_REPLAY,
            ControlTuple::Restate => StreamId::CTRL_RESTATE,
        }
    }

    /// Encodes into the ordinary tuple format, sourced from `src` (the
    /// controller uses a reserved task ID; workers use their own for
    /// `METRIC_RESP`).
    pub fn to_tuple(&self, src: TaskId) -> Tuple {
        let values = match self {
            ControlTuple::Routing {
                downstream,
                next_hops,
                policy,
            } => {
                let hops = match next_hops {
                    Some(hops) => {
                        Value::List(hops.iter().map(|t| Value::Int(t.0 as i64)).collect())
                    }
                    None => Value::Nil,
                };
                let policy_val = match policy {
                    Some((g, key_indices)) => {
                        let mut items = vec![Value::Str(g.name().to_owned())];
                        if let Grouping::Fields(keys) = g {
                            items.push(Value::List(
                                keys.iter().map(|k| Value::Str(k.clone())).collect(),
                            ));
                        } else {
                            items.push(Value::List(vec![]));
                        }
                        items.push(Value::List(
                            key_indices.iter().map(|&i| Value::Int(i as i64)).collect(),
                        ));
                        Value::List(items)
                    }
                    None => Value::Nil,
                };
                vec![Value::Str(downstream.clone()), hops, policy_val]
            }
            ControlTuple::Signal
            | ControlTuple::Activate
            | ControlTuple::Deactivate
            | ControlTuple::Replay
            | ControlTuple::Restate => vec![],
            ControlTuple::MetricReq { request_id } => vec![Value::Int(*request_id as i64)],
            ControlTuple::MetricResp {
                request_id,
                task,
                metrics,
            } => {
                let mut values = vec![Value::Int(*request_id as i64), Value::Int(task.0 as i64)];
                values.push(Value::List(
                    metrics
                        .iter()
                        .map(|(k, v)| Value::List(vec![Value::Str(k.clone()), Value::Int(*v)]))
                        .collect(),
                ));
                values
            }
            ControlTuple::InputRate { tuples_per_sec } => {
                vec![Value::Int(*tuples_per_sec as i64)]
            }
            ControlTuple::BatchSize { size } => vec![Value::Int(*size as i64)],
        };
        Tuple {
            meta: TupleMeta {
                src_task: src,
                stream: self.stream(),
                message_id: MessageId::NONE,
                trace: 0,
            },
            values,
        }
    }

    /// Decodes a control tuple; `None` when the tuple is not on a control
    /// stream or its payload is malformed (a malformed control tuple is
    /// ignored rather than crashing the worker).
    pub fn from_tuple(tuple: &Tuple) -> Option<ControlTuple> {
        let v = &tuple.values;
        match tuple.meta.stream {
            StreamId::CTRL_ROUTING => {
                let downstream = v.first()?.as_str()?.to_owned();
                let next_hops = match v.get(1)? {
                    Value::Nil => None,
                    Value::List(items) => Some(
                        items
                            .iter()
                            .map(|i| i.as_int().map(|n| TaskId(n as u32)))
                            .collect::<Option<Vec<_>>>()?,
                    ),
                    _ => return None,
                };
                let policy = match v.get(2)? {
                    Value::Nil => None,
                    Value::List(items) => {
                        let name = items.first()?.as_str()?;
                        let keys: Vec<String> = items
                            .get(1)?
                            .as_list()?
                            .iter()
                            .map(|k| k.as_str().map(str::to_owned))
                            .collect::<Option<_>>()?;
                        let key_indices: Vec<usize> = items
                            .get(2)?
                            .as_list()?
                            .iter()
                            .map(|k| k.as_int().map(|n| n as usize))
                            .collect::<Option<_>>()?;
                        let grouping = match name {
                            "shuffle" => Grouping::Shuffle,
                            "fields" => Grouping::Fields(keys),
                            "global" => Grouping::Global,
                            "all" => Grouping::All,
                            "sdn" => Grouping::SdnOffloaded,
                            _ => return None,
                        };
                        Some((grouping, key_indices))
                    }
                    _ => return None,
                };
                Some(ControlTuple::Routing {
                    downstream,
                    next_hops,
                    policy,
                })
            }
            StreamId::CTRL_SIGNAL => Some(ControlTuple::Signal),
            StreamId::CTRL_METRIC_REQ => Some(ControlTuple::MetricReq {
                request_id: v.first()?.as_int()? as u64,
            }),
            StreamId::CTRL_METRIC_RESP => {
                let request_id = v.first()?.as_int()? as u64;
                let task = TaskId(v.get(1)?.as_int()? as u32);
                let metrics = v
                    .get(2)?
                    .as_list()?
                    .iter()
                    .map(|pair| {
                        let pair = pair.as_list()?;
                        Some((pair.first()?.as_str()?.to_owned(), pair.get(1)?.as_int()?))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(ControlTuple::MetricResp {
                    request_id,
                    task,
                    metrics,
                })
            }
            StreamId::CTRL_INPUT_RATE => Some(ControlTuple::InputRate {
                tuples_per_sec: v.first()?.as_int()? as u32,
            }),
            StreamId::CTRL_ACTIVATE => Some(ControlTuple::Activate),
            StreamId::CTRL_DEACTIVATE => Some(ControlTuple::Deactivate),
            StreamId::CTRL_BATCH_SIZE => Some(ControlTuple::BatchSize {
                size: v.first()?.as_int()? as u32,
            }),
            StreamId::CTRL_REPLAY => Some(ControlTuple::Replay),
            StreamId::CTRL_RESTATE => Some(ControlTuple::Restate),
            _ => None,
        }
    }
}

/// The reserved task ID control tuples are "sourced" from when the SDN
/// controller injects them.
pub const CONTROLLER_TASK: TaskId = TaskId(u32::MAX);

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ct: ControlTuple) {
        let tuple = ct.to_tuple(CONTROLLER_TASK);
        assert!(tuple.is_control() || tuple.meta.stream == StreamId::CTRL_METRIC_RESP);
        let decoded = ControlTuple::from_tuple(&tuple).expect("decodes");
        assert_eq!(decoded, ct);
    }

    #[test]
    fn roundtrip_routing_hops_only() {
        roundtrip(ControlTuple::Routing {
            downstream: "count".into(),
            next_hops: Some(vec![TaskId(3), TaskId(4), TaskId(5)]),
            policy: None,
        });
    }

    #[test]
    fn roundtrip_routing_policy_only() {
        roundtrip(ControlTuple::Routing {
            downstream: "count".into(),
            next_hops: None,
            policy: Some((Grouping::Fields(vec!["word".into()]), vec![0])),
        });
        roundtrip(ControlTuple::Routing {
            downstream: "count".into(),
            next_hops: None,
            policy: Some((Grouping::Shuffle, vec![])),
        });
    }

    #[test]
    fn roundtrip_signal_and_rate_controls() {
        roundtrip(ControlTuple::Signal);
        roundtrip(ControlTuple::Activate);
        roundtrip(ControlTuple::Deactivate);
        roundtrip(ControlTuple::Replay);
        roundtrip(ControlTuple::Restate);
        roundtrip(ControlTuple::InputRate {
            tuples_per_sec: 5000,
        });
        roundtrip(ControlTuple::BatchSize { size: 250 });
    }

    #[test]
    fn roundtrip_metrics() {
        roundtrip(ControlTuple::MetricReq { request_id: 77 });
        roundtrip(ControlTuple::MetricResp {
            request_id: 77,
            task: TaskId(4),
            metrics: vec![("queue.depth".into(), 120), ("tuples.emitted".into(), 9000)],
        });
    }

    #[test]
    fn data_tuple_is_not_a_control_tuple() {
        let t = Tuple::new(TaskId(1), vec![Value::Int(5)]);
        assert!(ControlTuple::from_tuple(&t).is_none());
    }

    #[test]
    fn malformed_control_payload_is_ignored() {
        // ROUTING stream but garbage payload.
        let t = Tuple::on_stream(TaskId(0), StreamId::CTRL_ROUTING, vec![Value::Int(5)]);
        assert!(ControlTuple::from_tuple(&t).is_none());
        let t = Tuple::on_stream(TaskId(0), StreamId::CTRL_METRIC_REQ, vec![]);
        assert!(ControlTuple::from_tuple(&t).is_none());
    }

    #[test]
    fn streams_match_table2() {
        assert_eq!(ControlTuple::Signal.stream(), StreamId::CTRL_SIGNAL);
        assert_eq!(
            ControlTuple::BatchSize { size: 1 }.stream(),
            StreamId::CTRL_BATCH_SIZE
        );
    }
}
