//! # typhoon-controller — the Typhoon SDN control plane
//!
//! Reimplements the role Floodlight plays in the paper's prototype (§3.4,
//! §4): a unified management layer that programs the per-host software
//! switches over the OpenFlow subset, injects control tuples into workers
//! via `PacketOut`, harvests cross-layer statistics, and hosts control-plane
//! applications.
//!
//! * [`control`] — the Table 2 control tuples (`ROUTING`, `SIGNAL`,
//!   `METRIC_REQ/RESP`, `INPUT_RATE`, `ACTIVATE`/`DEACTIVATE`,
//!   `BATCH_SIZE`), encoded in the ordinary tuple format so the data plane
//!   cannot tell them apart from data (§3.3.2).
//! * [`rules`] — pure Table 3 rule generation: (logical, physical) → the
//!   exact per-host `FlowMod`/`GroupMod` set. Being a pure function keeps
//!   the controller *stateless*, as §3.4 requires: rules are derived from
//!   coordinator state on demand.
//! * [`controller`] — the event pump: per-switch control channels, app
//!   dispatch, stats caching, control-tuple injection.
//! * [`apps`] — the §4 control-plane applications: fault detector, live
//!   debugger, SDN load balancer, auto-scaler.
//! * [`rest`] — the user-facing command API ("REST" in the prototype): a
//!   line-oriented TCP service for topology reconfiguration and debugging
//!   requests.
//! * [`ha`] — controller replication: leader election through the
//!   coordinator, a persisted rule ledger, and failover re-sync against
//!   headless switches.

#![warn(missing_docs)]

pub mod apps;
pub mod control;
pub mod controller;
pub mod ha;
pub mod rest;
pub mod rules;

pub use apps::{AppCtx, ControlPlaneApp};
pub use control::ControlTuple;
pub use controller::{Controller, ControllerHandle, SwitchBinding};
pub use ha::{ControlPlane, HaConfig, RuleLedger};
pub use rules::{build_rules, unicast_rules, RulePlan, CONTROL_PRIORITY, DATA_PRIORITY};
