//! Concurrency and shape tests for the Redis-like store beyond the unit
//! suite: mixed readers/writers, windowed counters under contention, and
//! the exact access pattern the Yahoo benchmark's join/aggregate workers
//! generate.

use std::sync::Arc;
use typhoon_kv::KvStore;

#[test]
fn mixed_readers_and_writers_stay_consistent() {
    let kv = Arc::new(KvStore::new());
    for ad in 0..50 {
        kv.set(&format!("ad:{ad}"), &format!("campaign:{}", ad % 5));
    }
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let kv = kv.clone();
            std::thread::spawn(move || {
                for i in 0..500 {
                    kv.wincr(&format!("campaign:{}", (w + i) % 5), (i % 3) as u64, 1);
                }
            })
        })
        .collect();
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let kv = kv.clone();
            std::thread::spawn(move || {
                let mut hits = 0;
                for i in 0..2_000 {
                    if kv.get(&format!("ad:{}", i % 50)).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    for r in readers {
        assert_eq!(r.join().unwrap(), 2_000, "reads never disturbed by writes");
    }
    let total: i64 = (0..5)
        .flat_map(|c| kv.windows(&format!("campaign:{c}")))
        .map(|(_, n)| n)
        .sum();
    assert_eq!(total, 2_000, "every windowed increment accounted for");
}

#[test]
fn yahoo_access_pattern_join_then_aggregate() {
    let kv = KvStore::new();
    kv.set("ad:7", "campaign:2");
    // Join: lookup; Aggregate: wincr keyed by event-time window.
    for (time_ms, n) in [(500u64, 1i64), (9_999, 1), (10_000, 1), (25_000, 2)] {
        let campaign = kv.get("ad:7").expect("join hit");
        kv.wincr(&campaign, time_ms / 10_000, n);
    }
    assert_eq!(kv.windows("campaign:2"), vec![(0, 2), (1, 1), (2, 2)]);
}

#[test]
fn deletion_of_hash_keys_clears_windows() {
    let kv = KvStore::new();
    kv.wincr("c", 1, 5);
    assert!(kv.del("c"));
    assert!(kv.windows("c").is_empty());
    assert_eq!(kv.wget("c", 1), 0);
}
