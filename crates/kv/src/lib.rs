//! # typhoon-kv — a Redis-like in-memory key-value store
//!
//! The Yahoo streaming benchmark (§6.2, Fig. 13) uses Redis twice: as the
//! lookup table joining ad IDs to campaign IDs, and as the sink for
//! windowed campaign counts. This crate provides that slice of Redis,
//! built from scratch: sharded string keys, hash maps with atomic
//! field increments, and windowed counters keyed by `(name, window)` —
//! enough for join, aggregation and verification, all thread-safe.

#![warn(missing_docs)]

use parking_lot::RwLock;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};

const SHARDS: usize = 16;

#[derive(Default)]
struct Shard {
    strings: HashMap<String, String>,
    hashes: HashMap<String, BTreeMap<String, i64>>,
    blobs: HashMap<String, Vec<u8>>,
}

/// The store. Clone-free sharing via `Arc` at call sites.
pub struct KvStore {
    shards: Vec<RwLock<Shard>>,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        KvStore {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() % SHARDS as u64) as usize]
    }

    /// `SET key value`.
    pub fn set(&self, key: &str, value: &str) {
        self.shard(key)
            .write()
            .strings
            .insert(key.to_owned(), value.to_owned());
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Option<String> {
        self.shard(key).read().strings.get(key).cloned()
    }

    /// `DEL key` (string, hash and blob namespaces). Returns whether
    /// anything was removed.
    pub fn del(&self, key: &str) -> bool {
        let mut shard = self.shard(key).write();
        let a = shard.strings.remove(key).is_some();
        let b = shard.hashes.remove(key).is_some();
        let c = shard.blobs.remove(key).is_some();
        a || b || c
    }

    /// `SET key bytes` on the binary namespace — checkpoint snapshots are
    /// opaque `typhoon-tuple`-encoded blobs, not UTF-8 strings.
    pub fn bset(&self, key: &str, value: Vec<u8>) {
        self.shard(key).write().blobs.insert(key.to_owned(), value);
    }

    /// `GET key` on the binary namespace.
    pub fn bget(&self, key: &str) -> Option<Vec<u8>> {
        self.shard(key).read().blobs.get(key).cloned()
    }

    /// `DEL key` on the binary namespace only. Returns whether a blob was
    /// removed.
    pub fn bdel(&self, key: &str) -> bool {
        self.shard(key).write().blobs.remove(key).is_some()
    }

    /// `HINCRBY key field by` — atomic per-field increment; returns the
    /// new value. This is the aggregation primitive of the Yahoo
    /// benchmark's "aggregation & store" stage.
    pub fn hincr(&self, key: &str, field: &str, by: i64) -> i64 {
        let mut shard = self.shard(key).write();
        let entry = shard
            .hashes
            .entry(key.to_owned())
            .or_default()
            .entry(field.to_owned())
            .or_insert(0);
        *entry += by;
        *entry
    }

    /// `HSET key field value` (numeric fields).
    pub fn hset(&self, key: &str, field: &str, value: i64) {
        self.shard(key)
            .write()
            .hashes
            .entry(key.to_owned())
            .or_default()
            .insert(field.to_owned(), value);
    }

    /// `HGET key field`.
    pub fn hget(&self, key: &str, field: &str) -> Option<i64> {
        self.shard(key)
            .read()
            .hashes
            .get(key)
            .and_then(|h| h.get(field))
            .copied()
    }

    /// `HGETALL key` — fields in sorted order.
    pub fn hgetall(&self, key: &str) -> Vec<(String, i64)> {
        self.shard(key)
            .read()
            .hashes
            .get(key)
            .map(|h| h.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default()
    }

    /// Windowed counter increment: `wincr(name, window, by)` bumps the
    /// counter of `name` in time-window `window` (e.g. a 10-second epoch
    /// index). Returns the new value.
    pub fn wincr(&self, name: &str, window: u64, by: i64) -> i64 {
        self.hincr(name, &format!("w{window:020}"), by)
    }

    /// Reads a windowed counter.
    pub fn wget(&self, name: &str, window: u64) -> i64 {
        self.hget(name, &format!("w{window:020}")).unwrap_or(0)
    }

    /// All windows of a counter in ascending window order.
    pub fn windows(&self, name: &str) -> Vec<(u64, i64)> {
        self.hgetall(name)
            .into_iter()
            .filter_map(|(field, v)| {
                field
                    .strip_prefix('w')
                    .and_then(|w| w.parse::<u64>().ok())
                    .map(|w| (w, v))
            })
            .collect()
    }

    /// Total number of keys across namespaces (diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.read();
                s.strings.len() + s.hashes.len() + s.blobs.len()
            })
            .sum()
    }

    /// True when the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "KvStore({} keys)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn string_set_get_del() {
        let kv = KvStore::new();
        kv.set("ad:1", "campaign:9");
        assert_eq!(kv.get("ad:1").as_deref(), Some("campaign:9"));
        assert!(kv.del("ad:1"));
        assert_eq!(kv.get("ad:1"), None);
        assert!(!kv.del("ad:1"));
    }

    #[test]
    fn hash_ops() {
        let kv = KvStore::new();
        assert_eq!(kv.hincr("c:1", "views", 3), 3);
        assert_eq!(kv.hincr("c:1", "views", 2), 5);
        kv.hset("c:1", "clicks", 7);
        assert_eq!(kv.hget("c:1", "clicks"), Some(7));
        assert_eq!(
            kv.hgetall("c:1"),
            vec![("clicks".into(), 7), ("views".into(), 5)]
        );
        assert_eq!(kv.hget("c:1", "ghost"), None);
    }

    #[test]
    fn windowed_counters_sort_by_window() {
        let kv = KvStore::new();
        kv.wincr("campaign:1", 12, 5);
        kv.wincr("campaign:1", 3, 2);
        kv.wincr("campaign:1", 12, 1);
        assert_eq!(kv.wget("campaign:1", 12), 6);
        assert_eq!(kv.windows("campaign:1"), vec![(3, 2), (12, 6)]);
        assert_eq!(kv.wget("campaign:1", 99), 0);
    }

    #[test]
    fn blob_set_get_del() {
        let kv = KvStore::new();
        let snapshot = vec![0u8, 159, 146, 150, 255];
        kv.bset("ckpt:wc:count:3", snapshot.clone());
        assert_eq!(kv.bget("ckpt:wc:count:3"), Some(snapshot));
        assert!(kv.bdel("ckpt:wc:count:3"));
        assert_eq!(kv.bget("ckpt:wc:count:3"), None);
        assert!(!kv.bdel("ckpt:wc:count:3"));
    }

    #[test]
    fn del_clears_blob_namespace_too() {
        let kv = KvStore::new();
        kv.bset("k", vec![1, 2, 3]);
        assert!(kv.del("k"));
        assert_eq!(kv.bget("k"), None);
        assert!(kv.is_empty());
    }

    #[test]
    fn string_and_hash_namespaces_coexist_per_key() {
        let kv = KvStore::new();
        kv.set("k", "str");
        kv.hincr("k", "f", 1);
        assert_eq!(kv.get("k").as_deref(), Some("str"));
        assert_eq!(kv.hget("k", "f"), Some(1));
        assert!(kv.del("k"));
        assert!(kv.is_empty());
    }

    #[test]
    fn concurrent_hincr_is_atomic() {
        let kv = Arc::new(KvStore::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let kv = kv.clone();
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        kv.hincr("counter", "n", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(kv.hget("counter", "n"), Some(4000));
    }

    #[test]
    fn many_keys_spread_over_shards() {
        let kv = KvStore::new();
        for i in 0..1000 {
            kv.set(&format!("key-{i}"), "v");
        }
        assert_eq!(kv.len(), 1000);
        for i in 0..1000 {
            assert!(kv.get(&format!("key-{i}")).is_some());
        }
    }
}
