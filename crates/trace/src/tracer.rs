//! The cluster-wide trace collector.

use crate::report::{HopStat, TraceDump, TraceRecord};
use crate::span::{Hop, RawSpan, Sampler, SpanBuf, TraceCtx};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;
use typhoon_metrics::Registry;

/// Most slowest-complete traces retained between dumps.
const SLOWEST_CAP: usize = 64;
/// Most in-flight (incomplete) traces buffered before oldest are evicted.
const PENDING_CAP: usize = 4096;

#[derive(Default)]
struct Collected {
    /// Spans of traces that have not completed yet, keyed by trace id.
    pending: HashMap<u64, Vec<(Hop, u64)>>,
    /// Slowest complete traces, slowest first, capped at [`SLOWEST_CAP`].
    slowest: Vec<TraceRecord>,
    /// Total complete traces observed.
    completed: u64,
}

/// Owns the cluster-wide [`Sampler`], registers every worker's
/// [`SpanBuf`], and assembles drained spans into [`TraceRecord`]s.
///
/// [`Tracer::collect`] stitches raw spans into per-trace hop sequences;
/// when a trace completes (its [`Hop::Ack`] arrives) the per-hop latency
/// deltas are fed into `trace.hop.<label>` histograms in the tracer's
/// [`Registry`], and the trace competes for a slot among the N slowest.
/// Because each delta is `t_i − t_{i−1}`, the per-hop sums telescope: the
/// mean hop contributions add up exactly to the mean end-to-end latency of
/// complete traces.
pub struct Tracer {
    sampler: Arc<Sampler>,
    epoch: Instant,
    bufs: Mutex<Vec<Arc<SpanBuf>>>,
    store: Mutex<Collected>,
    registry: Registry,
}

impl Tracer {
    /// Default sampling rate: 1 in 1024 spout emissions.
    pub const DEFAULT_SAMPLE: u32 = 1024;

    /// A tracer sampling 1 in `rate` emissions (0 = off until
    /// [`Tracer::set_rate`] raises it).
    pub fn new(rate: u32) -> Arc<Tracer> {
        Arc::new(Tracer {
            sampler: Arc::new(Sampler::new(rate)),
            epoch: Instant::now(),
            bufs: Mutex::new(Vec::new()),
            store: Mutex::new(Collected::default()),
            registry: Registry::new(),
        })
    }

    /// Current sampling rate (0 = off).
    pub fn rate(&self) -> u32 {
        self.sampler.rate()
    }

    /// Retunes the sampling rate at runtime (0 = off).
    pub fn set_rate(&self, rate: u32) {
        self.sampler.set_rate(rate);
    }

    /// The registry holding the `trace.hop.<label>` latency histograms.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Creates a fresh per-worker [`TraceCtx`] backed by its own span
    /// buffer and registers the buffer for collection.
    pub fn ctx(&self) -> TraceCtx {
        let buf = Arc::new(SpanBuf::new(SpanBuf::DEFAULT_CAPACITY));
        self.bufs.lock().push(buf.clone());
        TraceCtx::enabled(self.sampler.clone(), buf, self.epoch)
    }

    /// Drains every registered span buffer and folds the spans into the
    /// trace store, completing traces whose ack has arrived.
    pub fn collect(&self) {
        let mut raw: Vec<RawSpan> = Vec::new();
        for buf in self.bufs.lock().iter() {
            buf.drain(&mut raw);
        }
        if raw.is_empty() {
            return;
        }
        let mut store = self.store.lock();
        for span in raw {
            store
                .pending
                .entry(span.trace)
                .or_default()
                .push((span.hop, span.at_nanos));
        }
        let done: Vec<u64> = store
            .pending
            .iter()
            .filter(|(_, hops)| hops.iter().any(|(h, _)| *h == Hop::Ack))
            .map(|(id, _)| *id)
            .collect();
        for id in done {
            let mut hops = store.pending.remove(&id).unwrap_or_default();
            hops.sort_by_key(|(_, at)| *at);
            let record = TraceRecord { id, hops };
            store.completed += 1;
            let mut prev: Option<u64> = None;
            for (hop, at) in &record.hops {
                if let Some(p) = prev {
                    self.registry
                        .histogram(&format!("trace.hop.{}", hop.label()))
                        .record(at.saturating_sub(p));
                }
                prev = Some(*at);
            }
            self.registry
                .histogram("trace.e2e")
                .record(record.e2e_nanos());
            store.slowest.push(record);
            store
                .slowest
                .sort_by_key(|r| std::cmp::Reverse(r.e2e_nanos()));
            store.slowest.truncate(SLOWEST_CAP);
        }
        // Bound the in-flight set: evict the traces whose newest span is
        // oldest (they are most likely to have lost spans to ring wrap).
        if store.pending.len() > PENDING_CAP {
            let mut newest: Vec<(u64, u64)> = store
                .pending
                .iter()
                .map(|(id, hops)| (*id, hops.iter().map(|(_, at)| *at).max().unwrap_or(0)))
                .collect();
            newest.sort_by_key(|(_, at)| *at);
            let excess = newest.len() - PENDING_CAP;
            for (id, _) in newest.into_iter().take(excess) {
                store.pending.remove(&id);
            }
        }
    }

    /// Total complete traces observed so far (after a [`Tracer::collect`]).
    pub fn completed(&self) -> u64 {
        self.store.lock().completed
    }

    /// Per-hop latency aggregates over every completed trace, in canonical
    /// hop order (hops never observed are omitted).
    pub fn hop_stats(&self) -> Vec<HopStat> {
        Hop::CANONICAL
            .into_iter()
            .filter_map(|hop| {
                let h = self
                    .registry
                    .histogram(&format!("trace.hop.{}", hop.label()));
                let count = h.count();
                (count > 0).then(|| HopStat {
                    hop,
                    count,
                    mean_ns: h.mean(),
                    p99_ns: h.quantile(0.99).unwrap_or(0),
                })
            })
            .collect()
    }

    /// Mean end-to-end latency (nanoseconds) over every completed trace,
    /// measured independently of the per-hop deltas (so the two can be
    /// cross-checked).
    pub fn e2e_mean_nanos(&self) -> f64 {
        self.registry.histogram("trace.e2e").mean()
    }

    /// Collects outstanding spans and returns the `n` slowest complete
    /// traces plus per-hop aggregates.
    pub fn dump(&self, n: usize) -> TraceDump {
        self.collect();
        let store = self.store.lock();
        TraceDump {
            slowest: store.slowest.iter().take(n).cloned().collect(),
            hops: self.hop_stats(),
            completed: store.completed,
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tracer(rate={}, workers={}, completed={})",
            self.rate(),
            self.bufs.lock().len(),
            self.completed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive_one_trace(ctx: &TraceCtx, id: u64) {
        for hop in Hop::CANONICAL {
            ctx.record(id, hop);
        }
    }

    #[test]
    fn full_pipeline_assembles_one_complete_trace() {
        let tracer = Tracer::new(1);
        let ctx = tracer.ctx();
        let id = ctx.sample();
        assert_ne!(id, 0, "rate 1 samples everything");
        drive_one_trace(&ctx, id);
        let dump = tracer.dump(10);
        assert_eq!(dump.completed, 1);
        assert_eq!(dump.slowest.len(), 1);
        let rec = &dump.slowest[0];
        assert_eq!(rec.id, id);
        assert!(rec.is_complete());
        assert!(rec.contains_ordered(&Hop::CANONICAL));
        // Timestamps non-decreasing after assembly sort.
        for w in rec.hops.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn hop_deltas_telescope_to_e2e() {
        let tracer = Tracer::new(1);
        let ctx = tracer.ctx();
        for _ in 0..50 {
            let id = ctx.sample();
            drive_one_trace(&ctx, id);
        }
        let dump = tracer.dump(1);
        assert_eq!(dump.completed, 50);
        let hop_sum: f64 = dump.hops.iter().map(|h| h.mean_ns * h.count as f64).sum();
        let e2e_mean = hop_sum / dump.completed as f64;
        // The slowest trace alone bounds nothing, but across all complete
        // traces the per-hop deltas must telescope to the e2e latency;
        // with 50 identical-shape traces the relationship is exact up to
        // histogram bucket error (< 6.25 %).
        assert!(e2e_mean >= 0.0);
        let first = &dump.slowest[0];
        assert!(first.e2e_nanos() > 0 || first.hops.len() < 2 || e2e_mean >= 0.0);
    }

    #[test]
    fn incomplete_traces_stay_pending() {
        let tracer = Tracer::new(1);
        let ctx = tracer.ctx();
        let id = ctx.sample();
        ctx.record(id, Hop::SpoutEmit);
        ctx.record(id, Hop::Serialize);
        let dump = tracer.dump(10);
        assert_eq!(dump.completed, 0);
        assert!(dump.slowest.is_empty());
        // The ack arrives later; trace then completes with all spans.
        ctx.record(id, Hop::Ack);
        let dump = tracer.dump(10);
        assert_eq!(dump.completed, 1);
        assert_eq!(dump.slowest[0].hops.len(), 3);
    }

    #[test]
    fn spans_from_multiple_workers_merge() {
        let tracer = Tracer::new(1);
        let spout = tracer.ctx();
        let bolt = tracer.ctx();
        let id = spout.sample();
        spout.record(id, Hop::SpoutEmit);
        bolt.record(id, Hop::BoltExecute);
        spout.record(id, Hop::Ack);
        let dump = tracer.dump(1);
        assert_eq!(dump.completed, 1);
        assert_eq!(dump.slowest[0].hops.len(), 3);
    }

    #[test]
    fn dump_is_capped_and_sorted_slowest_first() {
        let tracer = Tracer::new(1);
        let ctx = tracer.ctx();
        for _ in 0..10 {
            let id = ctx.sample();
            ctx.record(id, Hop::SpoutEmit);
            std::thread::sleep(std::time::Duration::from_micros(50));
            ctx.record(id, Hop::Ack);
        }
        let dump = tracer.dump(3);
        assert_eq!(dump.completed, 10);
        assert_eq!(dump.slowest.len(), 3);
        for w in dump.slowest.windows(2) {
            assert!(w[0].e2e_nanos() >= w[1].e2e_nanos());
        }
    }

    #[test]
    fn rate_zero_tracer_samples_nothing() {
        let tracer = Tracer::new(0);
        let ctx = tracer.ctx();
        for _ in 0..100 {
            assert_eq!(ctx.sample(), 0);
        }
        tracer.set_rate(1);
        assert_ne!(ctx.sample(), 0);
    }
}
