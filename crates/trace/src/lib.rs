//! # typhoon-trace — end-to-end tuple tracing
//!
//! A lightweight span-based tracing layer that follows a *sampled* tuple
//! across the whole pipeline — spout emit → serialization → executor/I/O
//! queue → tunnel/ring hop → switch datapath match → deserialization →
//! bolt execute → ack — the per-hop visibility the paper's control
//! applications (§5: live debugger, fault detector, load balancer) get
//! from SDN taps, and the measurement that per-hop event-time latency
//! decomposition needs (Karimov et al., *Benchmarking Distributed Stream
//! Data Processing Systems*).
//!
//! ## Design
//!
//! * **Sampling, not logging.** A [`Sampler`] stamps every 1-in-N spout
//!   emission with a nonzero trace id (default [`Tracer::DEFAULT_SAMPLE`] =
//!   1/1024; rate 0 turns the layer into a single always-false branch).
//!   The id rides inside the tuple metadata on the wire and in a reserved
//!   frame-header field, so downstream hops need no lookup tables.
//! * **Lock-free, allocation-free recording.** Each worker owns a
//!   fixed-size [`SpanBuf`] ring of atomic slots; [`TraceCtx::record`] is
//!   a `fetch_add` plus three atomic stores. Untraced tuples (`trace == 0`)
//!   cost one integer compare.
//! * **Offline assembly.** A [`Tracer`] registers every span buffer,
//!   [`Tracer::collect`]s raw spans, stitches them into per-trace hop
//!   sequences, feeds per-hop latency deltas into `trace.hop.<label>`
//!   [`typhoon_metrics::Histogram`]s, and renders the N slowest complete
//!   traces as a [`TraceDump`] (JSON or text).
//!
//! See `docs/OBSERVABILITY.md` for the operator-facing guide.

#![warn(missing_docs)]

mod report;
mod span;
mod tracer;

pub use report::{HopStat, TraceDump, TraceRecord};
pub use span::{Hop, RawSpan, Sampler, SpanBuf, TraceCtx};
pub use tracer::Tracer;
