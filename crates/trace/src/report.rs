//! Assembled trace records and operator-facing reports.

use crate::span::Hop;
use std::fmt::Write as _;

/// One assembled trace: every hop recorded for a single sampled tuple,
/// sorted by timestamp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The trace id assigned at the spout.
    pub id: u64,
    /// `(hop, nanos-since-epoch)` pairs in timestamp order.
    pub hops: Vec<(Hop, u64)>,
}

impl TraceRecord {
    /// A trace is complete once the spout observed the ack — the last hop
    /// of [`Hop::CANONICAL`].
    pub fn is_complete(&self) -> bool {
        self.hops.iter().any(|(h, _)| *h == Hop::Ack)
    }

    /// End-to-end latency: last timestamp minus first (0 for a trace with
    /// fewer than two hops).
    pub fn e2e_nanos(&self) -> u64 {
        match (self.hops.first(), self.hops.last()) {
            (Some((_, first)), Some((_, last))) => last.saturating_sub(*first),
            _ => 0,
        }
    }

    /// True when `sequence` appears as an ordered (not necessarily
    /// contiguous) subsequence of this trace's hops.
    pub fn contains_ordered(&self, sequence: &[Hop]) -> bool {
        let mut want = sequence.iter();
        let mut next = want.next();
        for (hop, _) in &self.hops {
            if Some(hop) == next {
                next = want.next();
            }
        }
        next.is_none()
    }
}

/// Aggregate latency contribution of one hop across all completed traces.
#[derive(Debug, Clone, PartialEq)]
pub struct HopStat {
    /// The pipeline stage.
    pub hop: Hop,
    /// Number of latency deltas recorded under this hop.
    pub count: u64,
    /// Mean nanoseconds spent reaching this hop from the previous one.
    pub mean_ns: f64,
    /// 99th-percentile nanoseconds for the same delta.
    pub p99_ns: u64,
}

/// The N slowest complete traces plus per-hop aggregates, renderable as
/// JSON ([`TraceDump::to_json`]) or a text table ([`TraceDump::to_text`]).
#[derive(Debug, Clone, Default)]
pub struct TraceDump {
    /// Slowest complete traces, slowest first.
    pub slowest: Vec<TraceRecord>,
    /// Per-hop aggregates over every completed trace so far.
    pub hops: Vec<HopStat>,
    /// Total completed traces observed by the tracer.
    pub completed: u64,
}

impl TraceDump {
    /// Renders the dump as a single-line JSON object (hand-rolled — no
    /// serde in the sanctioned offline dependency set).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"completed\":");
        let _ = write!(s, "{}", self.completed);
        s.push_str(",\"hops\":[");
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"hop\":\"{}\",\"count\":{},\"mean_ns\":{:.0},\"p99_ns\":{}}}",
                h.hop.label(),
                h.count,
                h.mean_ns,
                h.p99_ns
            );
        }
        s.push_str("],\"slowest\":[");
        for (i, t) in self.slowest.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"id\":{},\"e2e_ns\":{},\"hops\":[",
                t.id,
                t.e2e_nanos()
            );
            for (j, (hop, at)) in t.hops.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"hop\":\"{}\",\"at_ns\":{}}}", hop.label(), at);
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }

    /// Renders the dump as a human-readable table: per-hop aggregates
    /// followed by the slowest traces with per-hop deltas.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "completed traces: {}", self.completed);
        let _ = writeln!(
            s,
            "{:<14} {:>10} {:>12} {:>12}",
            "hop", "count", "mean_us", "p99_us"
        );
        for h in &self.hops {
            let _ = writeln!(
                s,
                "{:<14} {:>10} {:>12.1} {:>12.1}",
                h.hop.label(),
                h.count,
                h.mean_ns / 1_000.0,
                h.p99_ns as f64 / 1_000.0
            );
        }
        for t in &self.slowest {
            let _ = writeln!(
                s,
                "trace {} e2e {:.1}us:",
                t.id,
                t.e2e_nanos() as f64 / 1_000.0
            );
            let mut prev: Option<u64> = None;
            for (hop, at) in &t.hops {
                let delta = prev.map(|p| at.saturating_sub(p)).unwrap_or(0);
                let _ = writeln!(
                    s,
                    "  {:<14} +{:>10.1}us",
                    hop.label(),
                    delta as f64 / 1_000.0
                );
                prev = Some(*at);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> TraceRecord {
        TraceRecord {
            id: 9,
            hops: vec![
                (Hop::SpoutEmit, 100),
                (Hop::Serialize, 150),
                (Hop::QueueOut, 180),
                (Hop::NetHop, 240),
                (Hop::SwitchMatch, 260),
                (Hop::Deserialize, 300),
                (Hop::BoltExecute, 400),
                (Hop::Ack, 900),
            ],
        }
    }

    #[test]
    fn completeness_and_e2e() {
        let r = record();
        assert!(r.is_complete());
        assert_eq!(r.e2e_nanos(), 800);
        let partial = TraceRecord {
            id: 1,
            hops: vec![(Hop::SpoutEmit, 5)],
        };
        assert!(!partial.is_complete());
        assert_eq!(partial.e2e_nanos(), 0);
    }

    #[test]
    fn ordered_subsequence_matching() {
        let r = record();
        assert!(r.contains_ordered(&Hop::CANONICAL));
        assert!(r.contains_ordered(&[Hop::SpoutEmit, Hop::SwitchMatch, Hop::Ack]));
        assert!(!r.contains_ordered(&[Hop::Ack, Hop::SpoutEmit]));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let dump = TraceDump {
            slowest: vec![record()],
            hops: vec![HopStat {
                hop: Hop::NetHop,
                count: 3,
                mean_ns: 1234.5,
                p99_ns: 2000,
            }],
            completed: 7,
        };
        let json = dump.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"completed\":7"));
        assert!(json.contains("\"hop\":\"net_hop\""));
        assert!(json.contains("\"e2e_ns\":800"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(!json.contains('\n'), "single line");
    }

    #[test]
    fn text_lists_every_hop() {
        let dump = TraceDump {
            slowest: vec![record()],
            hops: Vec::new(),
            completed: 1,
        };
        let text = dump.to_text();
        for hop in Hop::CANONICAL {
            assert!(text.contains(hop.label()), "missing {hop}");
        }
    }
}
