//! Hot-path types: hop labels, the sampler, and the lock-free span buffer.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One pipeline stage a traced tuple passes through.
///
/// The canonical end-to-end order is [`Hop::CANONICAL`]; a *complete*
/// trace starts with [`Hop::SpoutEmit`] and ends with [`Hop::Ack`].
/// Intermediate hops repeat once per worker the tuple traverses (a
/// two-bolt chain records two `Serialize`/`Deserialize`/`BoltExecute`
/// rounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u32)]
pub enum Hop {
    /// A spout produced the tuple (trace ids are assigned here).
    SpoutEmit = 0,
    /// The framework/executor serialized the tuple to its wire form.
    Serialize = 1,
    /// The serialized blob entered a per-destination egress batch.
    QueueOut = 2,
    /// The frame was pushed into the ring port / transport connection.
    NetHop = 3,
    /// A switch datapath matched the frame against its flow table.
    SwitchMatch = 4,
    /// A receiving worker decoded the tuple from its wire form.
    Deserialize = 5,
    /// A bolt finished executing the tuple.
    BoltExecute = 6,
    /// The spout learned the tuple tree completed (acker verdict).
    Ack = 7,
}

impl Hop {
    /// Every hop in canonical pipeline order.
    pub const CANONICAL: [Hop; 8] = [
        Hop::SpoutEmit,
        Hop::Serialize,
        Hop::QueueOut,
        Hop::NetHop,
        Hop::SwitchMatch,
        Hop::Deserialize,
        Hop::BoltExecute,
        Hop::Ack,
    ];

    /// Stable lowercase label, used in metric names (`trace.hop.<label>`)
    /// and reports.
    pub fn label(self) -> &'static str {
        match self {
            Hop::SpoutEmit => "spout_emit",
            Hop::Serialize => "serialize",
            Hop::QueueOut => "queue_out",
            Hop::NetHop => "net_hop",
            Hop::SwitchMatch => "switch_match",
            Hop::Deserialize => "deserialize",
            Hop::BoltExecute => "bolt_execute",
            Hop::Ack => "ack",
        }
    }

    /// Inverse of the `repr(u32)` discriminant (spans store hops as raw
    /// integers in atomic slots).
    pub fn from_u32(v: u32) -> Option<Hop> {
        Hop::CANONICAL.into_iter().find(|h| *h as u32 == v)
    }
}

impl fmt::Display for Hop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Decides which tuples get traced: every `rate`-th sampled emission
/// receives a fresh nonzero trace id; everything else gets 0 (untraced).
///
/// `rate == 0` disables sampling entirely — [`Sampler::sample`] is then a
/// single relaxed load and compare, the "compiled to a no-op check"
/// guarantee of the trace layer.
#[derive(Debug, Default)]
pub struct Sampler {
    rate: AtomicU32,
    emissions: AtomicU64,
    next_id: AtomicU64,
}

impl Sampler {
    /// A sampler tracing 1 in `rate` emissions (0 = off).
    pub fn new(rate: u32) -> Self {
        Sampler {
            rate: AtomicU32::new(rate),
            emissions: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
        }
    }

    /// Current sampling rate (0 = off).
    pub fn rate(&self) -> u32 {
        self.rate.load(Ordering::Relaxed)
    }

    /// Retunes the sampling rate at runtime (0 = off).
    pub fn set_rate(&self, rate: u32) {
        self.rate.store(rate, Ordering::Relaxed);
    }

    /// Returns a fresh trace id for 1 in `rate` calls, 0 otherwise.
    pub fn sample(&self) -> u64 {
        let rate = self.rate.load(Ordering::Relaxed);
        if rate == 0 {
            return 0;
        }
        if !self
            .emissions
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(rate as u64)
        {
            return 0;
        }
        self.next_id.fetch_add(1, Ordering::Relaxed) + 1
    }
}

struct Slot {
    trace: AtomicU64,
    hop: AtomicU32,
    at_nanos: AtomicU64,
}

/// One raw span read back out of a [`SpanBuf`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawSpan {
    /// The trace the span belongs to (never 0).
    pub trace: u64,
    /// The pipeline stage.
    pub hop: Hop,
    /// Nanoseconds since the owning [`crate::Tracer`]'s epoch.
    pub at_nanos: u64,
}

/// A fixed-size, lock-free ring of trace spans owned by one worker (or
/// one switch datapath).
///
/// Writers claim a slot with a `fetch_add` on the head index and publish
/// the span by storing the trace id last with `Release` ordering; the slot
/// is invalidated (trace id 0) before the hop/timestamp words are
/// rewritten, so a racing reader sees either the old span, the new span,
/// or an empty slot — never a torn mix. When the ring wraps, the oldest
/// spans are overwritten (traces older than the buffer window simply come
/// back incomplete). No allocation ever happens after construction.
pub struct SpanBuf {
    slots: Box<[Slot]>,
    head: AtomicUsize,
}

impl SpanBuf {
    /// Default ring capacity (spans) per worker.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// A ring holding `capacity` spans (rounded up to a power of two).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| Slot {
                trace: AtomicU64::new(0),
                hop: AtomicU32::new(0),
                at_nanos: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpanBuf {
            slots,
            head: AtomicUsize::new(0),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one span. Lock-free and allocation-free; callers must pass
    /// a nonzero `trace`.
    pub fn record(&self, trace: u64, hop: Hop, at_nanos: u64) {
        debug_assert_ne!(trace, 0, "untraced spans must be filtered earlier");
        let idx = self.head.fetch_add(1, Ordering::Relaxed) & (self.slots.len() - 1);
        let slot = &self.slots[idx];
        // Invalidate, write payload, publish.
        slot.trace.store(0, Ordering::Release);
        slot.hop.store(hop as u32, Ordering::Relaxed);
        slot.at_nanos.store(at_nanos, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Release);
    }

    /// Drains every published span, clearing the slots it read. Racing
    /// writers may republish a slot concurrently; such spans are picked up
    /// by the next drain.
    pub fn drain(&self, out: &mut Vec<RawSpan>) {
        for slot in self.slots.iter() {
            let trace = slot.trace.swap(0, Ordering::Acquire);
            if trace == 0 {
                continue;
            }
            let hop = match Hop::from_u32(slot.hop.load(Ordering::Relaxed)) {
                Some(h) => h,
                None => continue, // torn slot: drop the span
            };
            out.push(RawSpan {
                trace,
                hop,
                at_nanos: slot.at_nanos.load(Ordering::Relaxed),
            });
        }
    }
}

impl fmt::Debug for SpanBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SpanBuf(capacity={})", self.slots.len())
    }
}

struct CtxInner {
    sampler: Arc<Sampler>,
    buf: Arc<SpanBuf>,
    epoch: Instant,
}

/// The per-worker tracing handle threaded through the pipeline.
///
/// Pairs the cluster-wide [`Sampler`] with this worker's [`SpanBuf`] and
/// the collector's epoch. A disabled (default) context makes every method
/// a no-op; recording an untraced tuple (`trace == 0`) is a single
/// compare. Cloning shares the same buffer — clone freely within a worker,
/// but ask the [`crate::Tracer`] for a fresh context per worker so span
/// buffers stay uncontended.
#[derive(Clone, Default)]
pub struct TraceCtx {
    inner: Option<Arc<CtxInner>>,
}

impl TraceCtx {
    /// A context that records nothing (the default).
    pub fn disabled() -> TraceCtx {
        TraceCtx::default()
    }

    pub(crate) fn enabled(sampler: Arc<Sampler>, buf: Arc<SpanBuf>, epoch: Instant) -> TraceCtx {
        TraceCtx {
            inner: Some(Arc::new(CtxInner {
                sampler,
                buf,
                epoch,
            })),
        }
    }

    /// True when spans can actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Samples one spout emission: a fresh nonzero trace id for 1 in
    /// `rate` calls, 0 (untraced) otherwise.
    pub fn sample(&self) -> u64 {
        match &self.inner {
            Some(i) => i.sampler.sample(),
            None => 0,
        }
    }

    /// Records `hop` for `trace` at the current monotonic time. No-op when
    /// `trace == 0` or the context is disabled.
    pub fn record(&self, trace: u64, hop: Hop) {
        if trace == 0 {
            return;
        }
        if let Some(i) = &self.inner {
            i.buf
                .record(trace, hop, i.epoch.elapsed().as_nanos() as u64);
        }
    }
}

impl fmt::Debug for TraceCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(i) => write!(f, "TraceCtx(rate={})", i.sampler.rate()),
            None => f.write_str("TraceCtx(disabled)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_rate_zero_never_samples() {
        let s = Sampler::new(0);
        for _ in 0..1000 {
            assert_eq!(s.sample(), 0);
        }
    }

    #[test]
    fn sampler_one_in_n_and_ids_are_unique_nonzero() {
        let s = Sampler::new(4);
        let ids: Vec<u64> = (0..40).map(|_| s.sample()).filter(|&v| v != 0).collect();
        assert_eq!(ids.len(), 10, "1 in 4 of 40 emissions");
        let set: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(set.len(), ids.len(), "ids are unique");
        assert!(ids.iter().all(|&v| v != 0));
    }

    #[test]
    fn sampler_rate_is_runtime_tunable() {
        let s = Sampler::new(0);
        assert_eq!(s.sample(), 0);
        s.set_rate(1);
        assert_ne!(s.sample(), 0);
        s.set_rate(0);
        assert_eq!(s.sample(), 0);
    }

    #[test]
    fn spanbuf_roundtrips_spans() {
        let buf = SpanBuf::new(16);
        buf.record(7, Hop::SpoutEmit, 100);
        buf.record(7, Hop::Serialize, 200);
        let mut out = Vec::new();
        buf.drain(&mut out);
        out.sort_by_key(|s| s.at_nanos);
        assert_eq!(
            out,
            vec![
                RawSpan {
                    trace: 7,
                    hop: Hop::SpoutEmit,
                    at_nanos: 100
                },
                RawSpan {
                    trace: 7,
                    hop: Hop::Serialize,
                    at_nanos: 200
                },
            ]
        );
        // Drain consumed the slots.
        out.clear();
        buf.drain(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn spanbuf_wraps_and_overwrites_oldest() {
        let buf = SpanBuf::new(8);
        for i in 0..20u64 {
            buf.record(i + 1, Hop::NetHop, i);
        }
        let mut out = Vec::new();
        buf.drain(&mut out);
        assert_eq!(out.len(), 8, "ring keeps exactly its capacity");
        let min = out.iter().map(|s| s.at_nanos).min().unwrap();
        assert_eq!(min, 12, "oldest spans were overwritten");
    }

    #[test]
    fn spanbuf_concurrent_writers_never_tear() {
        let buf = Arc::new(SpanBuf::new(1024));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let buf = buf.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        buf.record(t * 100_000 + i + 1, Hop::QueueOut, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut out = Vec::new();
        buf.drain(&mut out);
        assert!(!out.is_empty());
        for span in &out {
            assert_ne!(span.trace, 0);
            assert_eq!(span.hop, Hop::QueueOut);
        }
    }

    #[test]
    fn disabled_ctx_is_inert() {
        let ctx = TraceCtx::disabled();
        assert!(!ctx.is_enabled());
        assert_eq!(ctx.sample(), 0);
        ctx.record(42, Hop::Ack); // must not panic
    }

    #[test]
    fn hop_u32_roundtrip_and_labels_are_unique() {
        let mut labels = std::collections::HashSet::new();
        for hop in Hop::CANONICAL {
            assert_eq!(Hop::from_u32(hop as u32), Some(hop));
            assert!(labels.insert(hop.label()));
        }
        assert_eq!(Hop::from_u32(99), None);
    }
}
