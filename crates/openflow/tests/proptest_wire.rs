//! Property tests for the OpenFlow wire codec: every representable message
//! round-trips, and arbitrary bytes never panic the decoder.

use bytes::Bytes;
use proptest::prelude::*;
use typhoon_net::MacAddr;
use typhoon_openflow::{
    wire, Action, Bucket, DatapathId, FlowMatch, FlowMod, FlowModCommand, FlowStats, GroupId,
    GroupMod, GroupModCommand, OfMessage, PacketInReason, PortNo, PortStats, PortStatusReason,
};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_match() -> impl Strategy<Value = FlowMatch> {
    (
        proptest::option::of(any::<u32>().prop_map(PortNo)),
        proptest::option::of(arb_mac()),
        proptest::option::of(arb_mac()),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(|(in_port, dl_src, dl_dst, ether_type)| FlowMatch {
            in_port,
            dl_src,
            dl_dst,
            ether_type,
        })
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        any::<u32>().prop_map(|p| Action::Output(PortNo(p))),
        any::<u32>().prop_map(Action::SetTunDst),
        arb_mac().prop_map(Action::SetDlDst),
        any::<u32>().prop_map(|g| Action::Group(GroupId(g))),
        Just(Action::ToController),
    ]
}

fn arb_flow_mod() -> impl Strategy<Value = FlowMod> {
    (
        prop_oneof![
            Just(FlowModCommand::Add),
            Just(FlowModCommand::Modify),
            Just(FlowModCommand::Delete)
        ],
        any::<u16>(),
        arb_match(),
        proptest::collection::vec(arb_action(), 0..8),
        0u64..1_000_000,
        0u64..1_000_000,
        any::<u64>(),
    )
        .prop_map(
            |(command, priority, matcher, actions, idle_ms, hard_ms, cookie)| FlowMod {
                command,
                priority,
                matcher,
                actions,
                idle_timeout: std::time::Duration::from_millis(idle_ms),
                hard_timeout: std::time::Duration::from_millis(hard_ms),
                cookie,
            },
        )
}

fn arb_message() -> impl Strategy<Value = OfMessage> {
    prop_oneof![
        Just(OfMessage::Hello),
        any::<u64>().prop_map(OfMessage::EchoRequest),
        any::<u64>().prop_map(OfMessage::EchoReply),
        Just(OfMessage::FeaturesRequest),
        (any::<u64>(), proptest::collection::vec(any::<u32>(), 0..16)).prop_map(|(d, ports)| {
            OfMessage::FeaturesReply {
                dpid: DatapathId(d),
                ports: ports.into_iter().map(PortNo).collect(),
            }
        }),
        arb_flow_mod().prop_map(OfMessage::FlowMod),
        (
            prop_oneof![
                Just(GroupModCommand::Add),
                Just(GroupModCommand::Modify),
                Just(GroupModCommand::Delete)
            ],
            any::<u32>(),
            proptest::collection::vec(
                (any::<u32>(), proptest::collection::vec(arb_action(), 0..4)),
                0..6
            )
        )
            .prop_map(|(command, gid, buckets)| OfMessage::GroupMod(GroupMod {
                command,
                group: GroupId(gid),
                buckets: buckets
                    .into_iter()
                    .map(|(weight, actions)| Bucket { weight, actions })
                    .collect(),
            })),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..256)).prop_map(|(port, frame)| {
            OfMessage::PacketOut {
                in_port: PortNo(port),
                frame: Bytes::from(frame),
            }
        }),
        (
            any::<u32>(),
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..256)
        )
            .prop_map(|(port, action, frame)| OfMessage::PacketIn {
                in_port: PortNo(port),
                reason: if action {
                    PacketInReason::Action
                } else {
                    PacketInReason::NoMatch
                },
                frame: Bytes::from(frame),
            }),
        (0u8..3, any::<u32>()).prop_map(|(r, port)| OfMessage::PortStatus {
            reason: match r {
                0 => PortStatusReason::Add,
                1 => PortStatusReason::Delete,
                _ => PortStatusReason::Modify,
            },
            port: PortNo(port),
        }),
        Just(OfMessage::FlowStatsRequest),
        proptest::collection::vec(
            (
                arb_match(),
                any::<u16>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>()
            ),
            0..8
        )
        .prop_map(|stats| OfMessage::FlowStatsReply(
            stats
                .into_iter()
                .map(|(matcher, priority, cookie, packets, bytes)| FlowStats {
                    matcher,
                    priority,
                    cookie,
                    packets,
                    bytes,
                })
                .collect()
        )),
        Just(OfMessage::PortStatsRequest),
        proptest::collection::vec(
            (
                any::<u32>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>(),
                any::<u64>()
            ),
            0..8
        )
        .prop_map(|stats| OfMessage::PortStatsReply(
            stats
                .into_iter()
                .map(
                    |(port, rx_packets, tx_packets, rx_bytes, tx_bytes, tx_dropped)| PortStats {
                        port: PortNo(port),
                        rx_packets,
                        tx_packets,
                        rx_bytes,
                        tx_bytes,
                        tx_dropped,
                    }
                )
                .collect()
        )),
        any::<u32>().prop_map(|xid| OfMessage::Barrier { xid }),
        any::<u32>().prop_map(|xid| OfMessage::BarrierReply { xid }),
    ]
}

proptest! {
    #[test]
    fn any_message_roundtrips(msg in arb_message()) {
        let encoded = wire::encode(&msg);
        let (decoded, used) = wire::decode(encoded.clone()).expect("decode");
        prop_assert_eq!(used, encoded.len());
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..1024)) {
        let _ = wire::decode(Bytes::from(bytes));
    }

    #[test]
    fn truncated_valid_messages_error_cleanly(msg in arb_message(), cut_frac in 0.0f64..1.0) {
        let encoded = wire::encode(&msg);
        let cut = ((encoded.len() as f64) * cut_frac) as usize;
        if cut < encoded.len() {
            prop_assert!(wire::decode(encoded.slice(..cut)).is_err());
        }
    }

    #[test]
    fn concatenated_messages_decode_in_sequence(
        msgs in proptest::collection::vec(arb_message(), 1..5)
    ) {
        let mut joined = Vec::new();
        for m in &msgs {
            joined.extend_from_slice(&wire::encode(m));
        }
        let mut buf = Bytes::from(joined);
        for expected in &msgs {
            let (decoded, used) = wire::decode(buf.clone()).expect("sequential decode");
            prop_assert_eq!(&decoded, expected);
            buf = buf.slice(used..);
        }
        prop_assert!(buf.is_empty());
    }
}
