//! Core protocol identifiers.

use std::fmt;

/// Identifies one software switch (one per compute host in Typhoon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatapathId(pub u64);

impl fmt::Display for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpid:{:016x}", self.0)
    }
}

/// A switch port number, with the reserved values Typhoon uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortNo(pub u32);

impl PortNo {
    /// The host's tunnel port (Table 3: "a separate tunneling port is
    /// designated to send and receive tuples via a TCP tunnel"). Port 0 is
    /// never allocated to workers by the schedulers.
    pub const TUNNEL: PortNo = PortNo(0);

    /// `OFPP_CONTROLLER` — packets from/to the SDN controller.
    pub const CONTROLLER: PortNo = PortNo(0xffff_fffd);

    /// `OFPP_ALL` — flood to every port except the ingress port.
    pub const ALL: PortNo = PortNo(0xffff_fffc);

    /// `OFPP_ANY` — wildcard in delete/stats requests.
    pub const ANY: PortNo = PortNo(0xffff_ffff);

    /// Base of the tunnel-peer pseudo-port range. A switch that tears a
    /// tunnel down reports the loss as a `PortStatus` delete on
    /// `tunnel_peer(remote_host)`, so host-link faults flow through the
    /// same controller path as worker-port faults (Fig. 10).
    pub const TUNNEL_PEER_BASE: u32 = 0xfff0_0000;

    /// The pseudo-port standing for the tunnel to `host`.
    pub fn tunnel_peer(host: u32) -> PortNo {
        debug_assert!(host < 0xf_ff00, "host id overflows tunnel-peer range");
        PortNo(Self::TUNNEL_PEER_BASE + host)
    }

    /// The remote host id when this is a tunnel-peer pseudo-port.
    pub fn tunnel_peer_id(self) -> Option<u32> {
        if (Self::TUNNEL_PEER_BASE..0xffff_ff00).contains(&self.0) {
            Some(self.0 - Self::TUNNEL_PEER_BASE)
        } else {
            None
        }
    }

    /// True for physical (worker or tunnel) ports; pseudo-ports (reserved
    /// OpenFlow values and tunnel peers) are excluded.
    pub fn is_physical(self) -> bool {
        self.0 < Self::TUNNEL_PEER_BASE
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::CONTROLLER => write!(f, "CONTROLLER"),
            PortNo::ALL => write!(f, "ALL"),
            PortNo::ANY => write!(f, "ANY"),
            PortNo::TUNNEL => write!(f, "TUNNEL"),
            p if p.tunnel_peer_id().is_some() => {
                write!(f, "tunnel-peer:{}", p.tunnel_peer_id().unwrap_or(0))
            }
            PortNo(n) => write!(f, "port{n}"),
        }
    }
}

/// Identifies a group-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ports_are_not_physical() {
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::ALL.is_physical());
        assert!(!PortNo::ANY.is_physical());
        assert!(PortNo::TUNNEL.is_physical());
        assert!(PortNo(5).is_physical());
        assert!(!PortNo::tunnel_peer(2).is_physical());
    }

    #[test]
    fn tunnel_peer_round_trips() {
        let p = PortNo::tunnel_peer(3);
        assert_eq!(p.tunnel_peer_id(), Some(3));
        assert_eq!(p.to_string(), "tunnel-peer:3");
        assert_eq!(PortNo(7).tunnel_peer_id(), None);
        assert_eq!(PortNo::CONTROLLER.tunnel_peer_id(), None);
        assert_eq!(PortNo::TUNNEL.tunnel_peer_id(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(PortNo::CONTROLLER.to_string(), "CONTROLLER");
        assert_eq!(PortNo(3).to_string(), "port3");
        assert_eq!(GroupId(2).to_string(), "group2");
        assert_eq!(DatapathId(0xab).to_string(), "dpid:00000000000000ab");
    }
}
