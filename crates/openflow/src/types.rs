//! Core protocol identifiers.

use std::fmt;

/// Identifies one software switch (one per compute host in Typhoon).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatapathId(pub u64);

impl fmt::Display for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpid:{:016x}", self.0)
    }
}

/// A switch port number, with the reserved values Typhoon uses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortNo(pub u32);

impl PortNo {
    /// The host's tunnel port (Table 3: "a separate tunneling port is
    /// designated to send and receive tuples via a TCP tunnel"). Port 0 is
    /// never allocated to workers by the schedulers.
    pub const TUNNEL: PortNo = PortNo(0);

    /// `OFPP_CONTROLLER` — packets from/to the SDN controller.
    pub const CONTROLLER: PortNo = PortNo(0xffff_fffd);

    /// `OFPP_ALL` — flood to every port except the ingress port.
    pub const ALL: PortNo = PortNo(0xffff_fffc);

    /// `OFPP_ANY` — wildcard in delete/stats requests.
    pub const ANY: PortNo = PortNo(0xffff_ffff);

    /// True for physical (worker or tunnel) ports.
    pub fn is_physical(self) -> bool {
        self.0 < 0xffff_ff00
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::CONTROLLER => write!(f, "CONTROLLER"),
            PortNo::ALL => write!(f, "ALL"),
            PortNo::ANY => write!(f, "ANY"),
            PortNo::TUNNEL => write!(f, "TUNNEL"),
            PortNo(n) => write!(f, "port{n}"),
        }
    }
}

/// Identifies a group-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ports_are_not_physical() {
        assert!(!PortNo::CONTROLLER.is_physical());
        assert!(!PortNo::ALL.is_physical());
        assert!(!PortNo::ANY.is_physical());
        assert!(PortNo::TUNNEL.is_physical());
        assert!(PortNo(5).is_physical());
    }

    #[test]
    fn display_names() {
        assert_eq!(PortNo::CONTROLLER.to_string(), "CONTROLLER");
        assert_eq!(PortNo(3).to_string(), "port3");
        assert_eq!(GroupId(2).to_string(), "group2");
        assert_eq!(DatapathId(0xab).to_string(), "dpid:00000000000000ab");
    }
}
