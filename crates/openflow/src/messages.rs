//! The OpenFlow message set Typhoon exchanges between controller and
//! switches.

use crate::flow::FlowMod;
use crate::group::GroupMod;
use crate::stats::{FlowStats, PortStats};
use crate::types::{DatapathId, PortNo};
use bytes::Bytes;

/// Why a frame was punted to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    /// No rule matched the frame.
    NoMatch,
    /// A rule's action list contained [`crate::Action::ToController`].
    Action,
}

/// What happened to a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortStatusReason {
    /// A port was attached (worker launched).
    Add,
    /// A port vanished — "the Typhoon SDN controller detects a dead worker
    /// from an unexpected port removal event" (§4, Fault detector).
    Delete,
    /// Port state changed.
    Modify,
}

/// One controller↔switch protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum OfMessage {
    /// Version/handshake greeting.
    Hello,
    /// Liveness probe.
    EchoRequest(u64),
    /// Liveness response echoing the probe value.
    EchoReply(u64),
    /// Controller asks the switch to describe itself.
    FeaturesRequest,
    /// Switch describes itself.
    FeaturesReply {
        /// The switch's datapath ID.
        dpid: DatapathId,
        /// Currently attached ports.
        ports: Vec<PortNo>,
    },
    /// Flow-table modification.
    FlowMod(FlowMod),
    /// Group-table modification.
    GroupMod(GroupMod),
    /// Controller injects a frame into the data plane — how control tuples
    /// reach workers (§3.4: "control tuples carried in PacketOut OpenFlow
    /// messages").
    PacketOut {
        /// Port whose rules should process the frame, or
        /// [`PortNo::CONTROLLER`] to run it through the table as if it
        /// arrived from the controller.
        in_port: PortNo,
        /// The encoded Ethernet frame.
        frame: Bytes,
    },
    /// Switch punts a frame to the controller — how `METRIC_RESP` control
    /// tuples reach the controller.
    PacketIn {
        /// Port the frame arrived on.
        in_port: PortNo,
        /// Why it was punted.
        reason: PacketInReason,
        /// The encoded Ethernet frame.
        frame: Bytes,
    },
    /// Asynchronous port event — the fault detector's trigger.
    PortStatus {
        /// Add/delete/modify.
        reason: PortStatusReason,
        /// The affected port.
        port: PortNo,
    },
    /// Controller requests per-rule counters.
    FlowStatsRequest,
    /// Per-rule counters.
    FlowStatsReply(Vec<FlowStats>),
    /// Controller requests per-port counters.
    PortStatsRequest,
    /// Per-port counters.
    PortStatsReply(Vec<PortStats>),
    /// Fence: the switch answers after processing everything before it.
    Barrier {
        /// Correlation ID.
        xid: u32,
    },
    /// Fence acknowledgement.
    BarrierReply {
        /// Correlation ID echoed back.
        xid: u32,
    },
}

impl OfMessage {
    /// Short message-kind name for logs.
    pub fn kind(&self) -> &'static str {
        match self {
            OfMessage::Hello => "hello",
            OfMessage::EchoRequest(_) => "echo_request",
            OfMessage::EchoReply(_) => "echo_reply",
            OfMessage::FeaturesRequest => "features_request",
            OfMessage::FeaturesReply { .. } => "features_reply",
            OfMessage::FlowMod(_) => "flow_mod",
            OfMessage::GroupMod(_) => "group_mod",
            OfMessage::PacketOut { .. } => "packet_out",
            OfMessage::PacketIn { .. } => "packet_in",
            OfMessage::PortStatus { .. } => "port_status",
            OfMessage::FlowStatsRequest => "flow_stats_request",
            OfMessage::FlowStatsReply(_) => "flow_stats_reply",
            OfMessage::PortStatsRequest => "port_stats_request",
            OfMessage::PortStatsReply(_) => "port_stats_reply",
            OfMessage::Barrier { .. } => "barrier",
            OfMessage::BarrierReply { .. } => "barrier_reply",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_all_variants() {
        assert_eq!(OfMessage::Hello.kind(), "hello");
        assert_eq!(
            OfMessage::PortStatus {
                reason: PortStatusReason::Delete,
                port: PortNo(3)
            }
            .kind(),
            "port_status"
        );
        assert_eq!(OfMessage::Barrier { xid: 1 }.kind(), "barrier");
    }
}
