//! `FlowMod` — flow-table modification messages.

use crate::action::Action;
use crate::flow_match::FlowMatch;
use std::time::Duration;

/// What a `FlowMod` does to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModCommand {
    /// Insert a new rule (replacing an identical-match, identical-priority
    /// rule if present).
    Add,
    /// Rewrite the actions of every rule whose match the given match
    /// subsumes.
    Modify,
    /// Remove every rule whose match the given match subsumes.
    Delete,
}

/// A flow-table modification (§3.4: "the SDN controller directly controls
/// data tuple transport among workers by programming SDN switches with
/// FlowMod OpenFlow messages").
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMod {
    /// Add/modify/delete.
    pub command: FlowModCommand,
    /// Higher priority wins; ties broken by match specificity.
    pub priority: u16,
    /// The rule's match.
    pub matcher: FlowMatch,
    /// Action list applied on match (empty = drop).
    pub actions: Vec<Action>,
    /// Evict the rule after this long without a matching packet
    /// (`Duration::ZERO` = never). Stateless-worker removal relies on this:
    /// "the SDN flow rules … are automatically removed due to idle timeout"
    /// (§3.5).
    pub idle_timeout: Duration,
    /// Evict the rule after this long regardless of traffic (0 = never).
    pub hard_timeout: Duration,
    /// Opaque correlation value chosen by the controller.
    pub cookie: u64,
}

impl FlowMod {
    /// An `Add` with no timeouts.
    pub fn add(priority: u16, matcher: FlowMatch, actions: Vec<Action>) -> Self {
        FlowMod {
            command: FlowModCommand::Add,
            priority,
            matcher,
            actions,
            idle_timeout: Duration::ZERO,
            hard_timeout: Duration::ZERO,
            cookie: 0,
        }
    }

    /// A `Delete` covering everything `matcher` subsumes.
    pub fn delete(matcher: FlowMatch) -> Self {
        FlowMod {
            command: FlowModCommand::Delete,
            priority: 0,
            matcher,
            actions: Vec::new(),
            idle_timeout: Duration::ZERO,
            hard_timeout: Duration::ZERO,
            cookie: 0,
        }
    }

    /// Builder: set the idle timeout.
    pub fn with_idle_timeout(mut self, d: Duration) -> Self {
        self.idle_timeout = d;
        self
    }

    /// Builder: set the hard timeout.
    pub fn with_hard_timeout(mut self, d: Duration) -> Self {
        self.hard_timeout = d;
        self
    }

    /// Builder: set the cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PortNo;

    #[test]
    fn add_builder_defaults() {
        let fm = FlowMod::add(10, FlowMatch::any(), vec![Action::Output(PortNo(1))]);
        assert_eq!(fm.command, FlowModCommand::Add);
        assert_eq!(fm.idle_timeout, Duration::ZERO);
        assert_eq!(fm.cookie, 0);
    }

    #[test]
    fn builders_chain() {
        let fm = FlowMod::add(1, FlowMatch::any(), vec![])
            .with_idle_timeout(Duration::from_secs(5))
            .with_hard_timeout(Duration::from_secs(60))
            .with_cookie(42);
        assert_eq!(fm.idle_timeout, Duration::from_secs(5));
        assert_eq!(fm.hard_timeout, Duration::from_secs(60));
        assert_eq!(fm.cookie, 42);
    }

    #[test]
    fn delete_has_no_actions() {
        let fm = FlowMod::delete(FlowMatch::any().in_port(PortNo(2)));
        assert_eq!(fm.command, FlowModCommand::Delete);
        assert!(fm.actions.is_empty());
    }
}
