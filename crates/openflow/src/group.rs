//! Group table: select-type groups with weighted buckets.
//!
//! The SDN load-balancer application of §4 rewrites tuple destinations "in a
//! weighted round robin fashion (e.g., using select-type Group in OpenFlow)".
//! A [`GroupMod`] installs a group of weighted [`Bucket`]s; the switch picks
//! one bucket per frame via a [`WrrSelector`].

use crate::action::Action;
use crate::types::GroupId;

/// One weighted alternative inside a select group.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Relative selection weight (0 disables the bucket).
    pub weight: u32,
    /// Actions applied when this bucket is chosen (typically
    /// `SetDlDst(worker); Output(port)`).
    pub actions: Vec<Action>,
}

/// What a `GroupMod` does to the group table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupModCommand {
    /// Insert a new group (error if the ID exists).
    Add,
    /// Replace an existing group's buckets (how the controller retunes
    /// load-balancing weights at runtime).
    Modify,
    /// Remove a group.
    Delete,
}

/// A group-table modification message.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMod {
    /// Add/modify/delete.
    pub command: GroupModCommand,
    /// The group to modify.
    pub group: GroupId,
    /// Weighted buckets (ignored for `Delete`).
    pub buckets: Vec<Bucket>,
}

impl GroupMod {
    /// An `Add` for a select group.
    pub fn add(group: GroupId, buckets: Vec<Bucket>) -> Self {
        GroupMod {
            command: GroupModCommand::Add,
            group,
            buckets,
        }
    }

    /// A `Modify` replacing the buckets.
    pub fn modify(group: GroupId, buckets: Vec<Bucket>) -> Self {
        GroupMod {
            command: GroupModCommand::Modify,
            group,
            buckets,
        }
    }

    /// A `Delete`.
    pub fn delete(group: GroupId) -> Self {
        GroupMod {
            command: GroupModCommand::Delete,
            group,
            buckets: Vec::new(),
        }
    }
}

/// Deterministic smooth weighted round robin over bucket weights
/// (the classic Nginx algorithm): each pick adds every weight to a running
/// credit, selects the highest-credit bucket, then subtracts the weight
/// total from the winner. Produces interleaved (not bursty) schedules.
#[derive(Debug, Clone)]
pub struct WrrSelector {
    weights: Vec<u32>,
    credit: Vec<i64>,
    total: i64,
}

impl WrrSelector {
    /// Builds a selector; zero-weight buckets are never selected.
    pub fn new(weights: &[u32]) -> Self {
        WrrSelector {
            weights: weights.to_vec(),
            credit: vec![0; weights.len()],
            total: weights.iter().map(|&w| w as i64).sum(),
        }
    }

    /// Replaces the weights, resetting credits (a `GroupMod::modify`).
    pub fn set_weights(&mut self, weights: &[u32]) {
        *self = WrrSelector::new(weights);
    }

    /// Picks the next bucket index, or `None` when all weights are zero.
    ///
    /// Deliberately named like `Iterator::next` but not an `Iterator`
    /// impl: the selector is infinite and stateful, and callers want
    /// `&mut self` access without iterator adaptors.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<usize> {
        if self.total == 0 {
            return None;
        }
        let mut best: Option<usize> = None;
        for (i, &w) in self.weights.iter().enumerate() {
            self.credit[i] += w as i64;
            if w > 0 && best.is_none_or(|b| self.credit[i] > self.credit[b]) {
                best = Some(i);
            }
        }
        let chosen = best.expect("total > 0 implies a positive weight");
        self.credit[chosen] -= self.total;
        Some(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PortNo;
    use std::collections::HashMap;

    #[test]
    fn equal_weights_round_robin() {
        let mut s = WrrSelector::new(&[1, 1, 1]);
        let picks: Vec<_> = (0..6).map(|_| s.next().unwrap()).collect();
        assert_eq!(&picks[..3], &[0, 1, 2]);
        assert_eq!(&picks[3..], &[0, 1, 2]);
    }

    #[test]
    fn weights_respected_proportionally() {
        let mut s = WrrSelector::new(&[3, 1]);
        let mut counts = HashMap::new();
        for _ in 0..400 {
            *counts.entry(s.next().unwrap()).or_insert(0u32) += 1;
        }
        assert_eq!(counts[&0], 300);
        assert_eq!(counts[&1], 100);
    }

    #[test]
    fn smooth_wrr_interleaves_rather_than_bursts() {
        // 5:1 weighting must not emit five 0s in a row then a 1 forever;
        // the smooth algorithm spreads the low-weight bucket through.
        let mut s = WrrSelector::new(&[5, 1]);
        let picks: Vec<_> = (0..12).map(|_| s.next().unwrap()).collect();
        let ones: Vec<_> = picks
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == 1)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(ones.len(), 2, "two picks of bucket 1 in 12");
        assert!(ones[1] - ones[0] >= 4, "spread out, not adjacent");
    }

    #[test]
    fn zero_weight_bucket_never_selected() {
        let mut s = WrrSelector::new(&[0, 2, 0]);
        for _ in 0..10 {
            assert_eq!(s.next(), Some(1));
        }
    }

    #[test]
    fn all_zero_weights_yield_none() {
        let mut s = WrrSelector::new(&[0, 0]);
        assert_eq!(s.next(), None);
        let mut empty = WrrSelector::new(&[]);
        assert_eq!(empty.next(), None);
    }

    #[test]
    fn set_weights_retunes_distribution() {
        let mut s = WrrSelector::new(&[1, 1]);
        s.set_weights(&[0, 1]);
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.next(), Some(1));
    }

    #[test]
    fn groupmod_builders() {
        let b = Bucket {
            weight: 2,
            actions: vec![Action::Output(PortNo(1))],
        };
        let add = GroupMod::add(GroupId(1), vec![b.clone()]);
        assert_eq!(add.command, GroupModCommand::Add);
        let del = GroupMod::delete(GroupId(1));
        assert!(del.buckets.is_empty());
        let m = GroupMod::modify(GroupId(1), vec![b]);
        assert_eq!(m.command, GroupModCommand::Modify);
    }
}
