//! Flow and port statistics — the controller's cross-layer inputs.
//!
//! "The SDN controller can exploit cross-layer information from the network
//! (e.g., port/flow statistics and status events)" (§4). Switches answer
//! `PortStatsRequest`/`FlowStatsRequest` with these records.

use crate::flow_match::FlowMatch;
use crate::types::PortNo;

/// Per-port counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStats {
    /// The port.
    pub port: PortNo,
    /// Frames received from the attached worker/tunnel.
    pub rx_packets: u64,
    /// Frames forwarded out this port.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes forwarded.
    pub tx_bytes: u64,
    /// Frames dropped on the TX side (ring overflow).
    pub tx_dropped: u64,
}

/// Per-rule counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowStats {
    /// The rule's match.
    pub matcher: FlowMatch,
    /// The rule's priority.
    pub priority: u16,
    /// The rule's cookie.
    pub cookie: u64,
    /// Frames that hit the rule.
    pub packets: u64,
    /// Bytes that hit the rule.
    pub bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zeroed() {
        let ps = PortStats::default();
        assert_eq!(ps.rx_packets, 0);
        assert_eq!(ps.port, PortNo(0));
    }

    #[test]
    fn flow_stats_carry_rule_identity() {
        let fs = FlowStats {
            matcher: FlowMatch::any().in_port(PortNo(2)),
            priority: 7,
            cookie: 9,
            packets: 1,
            bytes: 64,
        };
        assert_eq!(fs.matcher.in_port, Some(PortNo(2)));
        assert_eq!(fs.priority, 7);
    }
}
