//! # typhoon-openflow — the OpenFlow protocol subset Typhoon uses
//!
//! A from-scratch implementation of exactly the slice of OpenFlow the paper
//! relies on (§3.4, Table 3): flow matching on `in_port`/`dl_src`/`dl_dst`/
//! `ether_type`, output/tunnel/group/controller actions, `FlowMod`,
//! `GroupMod` (select groups with weighted buckets, used by the SDN load
//! balancer of §4), `PacketOut` (control-tuple injection), `PacketIn`
//! (worker→controller metric responses), `PortStatus` (the fault detector's
//! trigger) and flow/port statistics.
//!
//! Messages have a real binary wire codec ([`wire`]) with length-prefixed
//! framing; the controller↔switch channel in this reproduction carries
//! encoded bytes, so protocol encode/decode is exercised on every control
//! interaction, exactly as a real Floodlight↔OVS deployment would.

#![warn(missing_docs)]

pub mod action;
pub mod flow;
pub mod flow_match;
pub mod group;
pub mod messages;
pub mod stats;
pub mod types;
pub mod wire;

pub use action::Action;
pub use flow::{FlowMod, FlowModCommand};
pub use flow_match::{FlowMatch, FrameMeta};
pub use group::{Bucket, GroupMod, GroupModCommand, WrrSelector};
pub use messages::{OfMessage, PacketInReason, PortStatusReason};
pub use stats::{FlowStats, PortStats};
pub use types::{DatapathId, GroupId, PortNo};

/// Errors from protocol encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfError {
    /// The byte stream ended mid-message.
    Truncated(&'static str),
    /// An unknown message/action/enum tag was encountered.
    BadTag {
        /// What kind of tag was being decoded.
        what: &'static str,
        /// The offending value.
        tag: u8,
    },
    /// A declared length is impossible.
    BadLength(usize),
}

impl std::fmt::Display for OfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OfError::Truncated(what) => write!(f, "truncated while decoding {what}"),
            OfError::BadTag { what, tag } => write!(f, "bad {what} tag 0x{tag:02x}"),
            OfError::BadLength(n) => write!(f, "impossible length {n}"),
        }
    }
}

impl std::error::Error for OfError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, OfError>;
