//! Binary wire codec with length-prefixed framing.
//!
//! Message frame: `len:u32be body`, where `body := type:u8 fields…`.
//! The controller↔switch channels carry these encoded bytes, so every
//! control interaction in the reproduction exercises real protocol framing
//! (the "Framing" discipline of the Tokio guide).

use crate::action::Action;
use crate::flow::{FlowMod, FlowModCommand};
use crate::flow_match::FlowMatch;
use crate::group::{Bucket, GroupMod, GroupModCommand};
use crate::messages::{OfMessage, PacketInReason, PortStatusReason};
use crate::stats::{FlowStats, PortStats};
use crate::types::{DatapathId, GroupId, PortNo};
use crate::{OfError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::time::Duration;
use typhoon_net::MacAddr;

/// Hard cap on one encoded message (a PacketOut carries at most one MTU-ish
/// frame plus headers; 64 MiB is generous and bounds corrupt-length damage).
pub const MAX_MESSAGE: usize = 64 * 1024 * 1024;

const T_HELLO: u8 = 0;
const T_ECHO_REQ: u8 = 1;
const T_ECHO_REP: u8 = 2;
const T_FEAT_REQ: u8 = 3;
const T_FEAT_REP: u8 = 4;
const T_FLOW_MOD: u8 = 5;
const T_GROUP_MOD: u8 = 6;
const T_PACKET_OUT: u8 = 7;
const T_PACKET_IN: u8 = 8;
const T_PORT_STATUS: u8 = 9;
const T_FLOW_STATS_REQ: u8 = 10;
const T_FLOW_STATS_REP: u8 = 11;
const T_PORT_STATS_REQ: u8 = 12;
const T_PORT_STATS_REP: u8 = 13;
const T_BARRIER: u8 = 14;
const T_BARRIER_REP: u8 = 15;

fn put_opt_u32(buf: &mut BytesMut, v: Option<u32>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_u32(x);
        }
        None => buf.put_u8(0),
    }
}

fn put_opt_mac(buf: &mut BytesMut, v: Option<MacAddr>) {
    match v {
        Some(m) => {
            buf.put_u8(1);
            buf.put_slice(&m.0);
        }
        None => buf.put_u8(0),
    }
}

fn put_opt_u16(buf: &mut BytesMut, v: Option<u16>) {
    match v {
        Some(x) => {
            buf.put_u8(1);
            buf.put_u16(x);
        }
        None => buf.put_u8(0),
    }
}

fn put_match(buf: &mut BytesMut, m: &FlowMatch) {
    put_opt_u32(buf, m.in_port.map(|p| p.0));
    put_opt_mac(buf, m.dl_src);
    put_opt_mac(buf, m.dl_dst);
    put_opt_u16(buf, m.ether_type);
}

fn put_action(buf: &mut BytesMut, a: &Action) {
    match a {
        Action::Output(p) => {
            buf.put_u8(0);
            buf.put_u32(p.0);
        }
        Action::SetTunDst(h) => {
            buf.put_u8(1);
            buf.put_u32(*h);
        }
        Action::SetDlDst(m) => {
            buf.put_u8(2);
            buf.put_slice(&m.0);
        }
        Action::Group(g) => {
            buf.put_u8(3);
            buf.put_u32(g.0);
        }
        Action::ToController => buf.put_u8(4),
    }
}

fn put_actions(buf: &mut BytesMut, actions: &[Action]) {
    buf.put_u16(actions.len() as u16);
    for a in actions {
        put_action(buf, a);
    }
}

/// Encodes a message, including the length prefix.
pub fn encode(msg: &OfMessage) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    match msg {
        OfMessage::Hello => body.put_u8(T_HELLO),
        OfMessage::EchoRequest(v) => {
            body.put_u8(T_ECHO_REQ);
            body.put_u64(*v);
        }
        OfMessage::EchoReply(v) => {
            body.put_u8(T_ECHO_REP);
            body.put_u64(*v);
        }
        OfMessage::FeaturesRequest => body.put_u8(T_FEAT_REQ),
        OfMessage::FeaturesReply { dpid, ports } => {
            body.put_u8(T_FEAT_REP);
            body.put_u64(dpid.0);
            body.put_u32(ports.len() as u32);
            for p in ports {
                body.put_u32(p.0);
            }
        }
        OfMessage::FlowMod(fm) => {
            body.put_u8(T_FLOW_MOD);
            body.put_u8(match fm.command {
                FlowModCommand::Add => 0,
                FlowModCommand::Modify => 1,
                FlowModCommand::Delete => 2,
            });
            body.put_u16(fm.priority);
            put_match(&mut body, &fm.matcher);
            put_actions(&mut body, &fm.actions);
            body.put_u64(fm.idle_timeout.as_millis() as u64);
            body.put_u64(fm.hard_timeout.as_millis() as u64);
            body.put_u64(fm.cookie);
        }
        OfMessage::GroupMod(gm) => {
            body.put_u8(T_GROUP_MOD);
            body.put_u8(match gm.command {
                GroupModCommand::Add => 0,
                GroupModCommand::Modify => 1,
                GroupModCommand::Delete => 2,
            });
            body.put_u32(gm.group.0);
            body.put_u16(gm.buckets.len() as u16);
            for b in &gm.buckets {
                body.put_u32(b.weight);
                put_actions(&mut body, &b.actions);
            }
        }
        OfMessage::PacketOut { in_port, frame } => {
            body.put_u8(T_PACKET_OUT);
            body.put_u32(in_port.0);
            body.put_u32(frame.len() as u32);
            body.put_slice(frame);
        }
        OfMessage::PacketIn {
            in_port,
            reason,
            frame,
        } => {
            body.put_u8(T_PACKET_IN);
            body.put_u32(in_port.0);
            body.put_u8(match reason {
                PacketInReason::NoMatch => 0,
                PacketInReason::Action => 1,
            });
            body.put_u32(frame.len() as u32);
            body.put_slice(frame);
        }
        OfMessage::PortStatus { reason, port } => {
            body.put_u8(T_PORT_STATUS);
            body.put_u8(match reason {
                PortStatusReason::Add => 0,
                PortStatusReason::Delete => 1,
                PortStatusReason::Modify => 2,
            });
            body.put_u32(port.0);
        }
        OfMessage::FlowStatsRequest => body.put_u8(T_FLOW_STATS_REQ),
        OfMessage::FlowStatsReply(stats) => {
            body.put_u8(T_FLOW_STATS_REP);
            body.put_u32(stats.len() as u32);
            for s in stats {
                put_match(&mut body, &s.matcher);
                body.put_u16(s.priority);
                body.put_u64(s.cookie);
                body.put_u64(s.packets);
                body.put_u64(s.bytes);
            }
        }
        OfMessage::PortStatsRequest => body.put_u8(T_PORT_STATS_REQ),
        OfMessage::PortStatsReply(stats) => {
            body.put_u8(T_PORT_STATS_REP);
            body.put_u32(stats.len() as u32);
            for s in stats {
                body.put_u32(s.port.0);
                body.put_u64(s.rx_packets);
                body.put_u64(s.tx_packets);
                body.put_u64(s.rx_bytes);
                body.put_u64(s.tx_bytes);
                body.put_u64(s.tx_dropped);
            }
        }
        OfMessage::Barrier { xid } => {
            body.put_u8(T_BARRIER);
            body.put_u32(*xid);
        }
        OfMessage::BarrierReply { xid } => {
            body.put_u8(T_BARRIER_REP);
            body.put_u32(*xid);
        }
    }
    let mut out = BytesMut::with_capacity(4 + body.len());
    out.put_u32(body.len() as u32);
    out.extend_from_slice(&body);
    out.freeze()
}

struct Cursor {
    buf: Bytes,
}

impl Cursor {
    fn need(&self, n: usize, what: &'static str) -> Result<()> {
        if self.buf.len() < n {
            Err(OfError::Truncated(what))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self, what: &'static str) -> Result<u8> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self, what: &'static str) -> Result<u16> {
        self.need(2, what)?;
        Ok(self.buf.get_u16())
    }

    fn u32(&mut self, what: &'static str) -> Result<u32> {
        self.need(4, what)?;
        Ok(self.buf.get_u32())
    }

    fn u64(&mut self, what: &'static str) -> Result<u64> {
        self.need(8, what)?;
        Ok(self.buf.get_u64())
    }

    fn mac(&mut self, what: &'static str) -> Result<MacAddr> {
        self.need(6, what)?;
        let mut m = [0u8; 6];
        self.buf.copy_to_slice(&mut m);
        Ok(MacAddr(m))
    }

    fn bytes(&mut self, what: &'static str) -> Result<Bytes> {
        let len = self.u32(what)? as usize;
        if len > MAX_MESSAGE {
            return Err(OfError::BadLength(len));
        }
        self.need(len, what)?;
        Ok(self.buf.split_to(len))
    }

    fn opt_u32(&mut self, what: &'static str) -> Result<Option<u32>> {
        Ok(if self.u8(what)? != 0 {
            Some(self.u32(what)?)
        } else {
            None
        })
    }

    fn opt_mac(&mut self, what: &'static str) -> Result<Option<MacAddr>> {
        Ok(if self.u8(what)? != 0 {
            Some(self.mac(what)?)
        } else {
            None
        })
    }

    fn opt_u16(&mut self, what: &'static str) -> Result<Option<u16>> {
        Ok(if self.u8(what)? != 0 {
            Some(self.u16(what)?)
        } else {
            None
        })
    }

    fn flow_match(&mut self) -> Result<FlowMatch> {
        Ok(FlowMatch {
            in_port: self.opt_u32("match.in_port")?.map(PortNo),
            dl_src: self.opt_mac("match.dl_src")?,
            dl_dst: self.opt_mac("match.dl_dst")?,
            ether_type: self.opt_u16("match.ether_type")?,
        })
    }

    fn action(&mut self) -> Result<Action> {
        Ok(match self.u8("action tag")? {
            0 => Action::Output(PortNo(self.u32("action.output")?)),
            1 => Action::SetTunDst(self.u32("action.set_tun_dst")?),
            2 => Action::SetDlDst(self.mac("action.set_dl_dst")?),
            3 => Action::Group(GroupId(self.u32("action.group")?)),
            4 => Action::ToController,
            tag => {
                return Err(OfError::BadTag {
                    what: "action",
                    tag,
                })
            }
        })
    }

    fn actions(&mut self) -> Result<Vec<Action>> {
        let n = self.u16("action count")? as usize;
        let mut out = Vec::with_capacity(n.min(256));
        for _ in 0..n {
            out.push(self.action()?);
        }
        Ok(out)
    }
}

/// Decodes one length-prefixed message from the front of `bytes`, returning
/// the message and the total bytes consumed.
pub fn decode(mut bytes: Bytes) -> Result<(OfMessage, usize)> {
    if bytes.len() < 4 {
        return Err(OfError::Truncated("length prefix"));
    }
    let len = bytes.get_u32() as usize;
    if len > MAX_MESSAGE {
        return Err(OfError::BadLength(len));
    }
    if bytes.len() < len {
        return Err(OfError::Truncated("message body"));
    }
    let body = bytes.split_to(len);
    let consumed = 4 + len;
    let mut c = Cursor { buf: body };
    let msg = match c.u8("message type")? {
        T_HELLO => OfMessage::Hello,
        T_ECHO_REQ => OfMessage::EchoRequest(c.u64("echo value")?),
        T_ECHO_REP => OfMessage::EchoReply(c.u64("echo value")?),
        T_FEAT_REQ => OfMessage::FeaturesRequest,
        T_FEAT_REP => {
            let dpid = DatapathId(c.u64("dpid")?);
            let n = c.u32("port count")? as usize;
            let mut ports = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                ports.push(PortNo(c.u32("port")?));
            }
            OfMessage::FeaturesReply { dpid, ports }
        }
        T_FLOW_MOD => {
            let command = match c.u8("flow_mod command")? {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::Delete,
                tag => {
                    return Err(OfError::BadTag {
                        what: "flow_mod command",
                        tag,
                    })
                }
            };
            let priority = c.u16("priority")?;
            let matcher = c.flow_match()?;
            let actions = c.actions()?;
            let idle = Duration::from_millis(c.u64("idle timeout")?);
            let hard = Duration::from_millis(c.u64("hard timeout")?);
            let cookie = c.u64("cookie")?;
            OfMessage::FlowMod(FlowMod {
                command,
                priority,
                matcher,
                actions,
                idle_timeout: idle,
                hard_timeout: hard,
                cookie,
            })
        }
        T_GROUP_MOD => {
            let command = match c.u8("group_mod command")? {
                0 => GroupModCommand::Add,
                1 => GroupModCommand::Modify,
                2 => GroupModCommand::Delete,
                tag => {
                    return Err(OfError::BadTag {
                        what: "group_mod command",
                        tag,
                    })
                }
            };
            let group = GroupId(c.u32("group id")?);
            let n = c.u16("bucket count")? as usize;
            let mut buckets = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                let weight = c.u32("bucket weight")?;
                let actions = c.actions()?;
                buckets.push(Bucket { weight, actions });
            }
            OfMessage::GroupMod(GroupMod {
                command,
                group,
                buckets,
            })
        }
        T_PACKET_OUT => OfMessage::PacketOut {
            in_port: PortNo(c.u32("packet_out in_port")?),
            frame: c.bytes("packet_out frame")?,
        },
        T_PACKET_IN => {
            let in_port = PortNo(c.u32("packet_in in_port")?);
            let reason = match c.u8("packet_in reason")? {
                0 => PacketInReason::NoMatch,
                1 => PacketInReason::Action,
                tag => {
                    return Err(OfError::BadTag {
                        what: "packet_in reason",
                        tag,
                    })
                }
            };
            OfMessage::PacketIn {
                in_port,
                reason,
                frame: c.bytes("packet_in frame")?,
            }
        }
        T_PORT_STATUS => {
            let reason = match c.u8("port_status reason")? {
                0 => PortStatusReason::Add,
                1 => PortStatusReason::Delete,
                2 => PortStatusReason::Modify,
                tag => {
                    return Err(OfError::BadTag {
                        what: "port_status reason",
                        tag,
                    })
                }
            };
            OfMessage::PortStatus {
                reason,
                port: PortNo(c.u32("port_status port")?),
            }
        }
        T_FLOW_STATS_REQ => OfMessage::FlowStatsRequest,
        T_FLOW_STATS_REP => {
            let n = c.u32("flow stats count")? as usize;
            let mut stats = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let matcher = c.flow_match()?;
                let priority = c.u16("stats priority")?;
                let cookie = c.u64("stats cookie")?;
                let packets = c.u64("stats packets")?;
                let bytes_ = c.u64("stats bytes")?;
                stats.push(FlowStats {
                    matcher,
                    priority,
                    cookie,
                    packets,
                    bytes: bytes_,
                });
            }
            OfMessage::FlowStatsReply(stats)
        }
        T_PORT_STATS_REQ => OfMessage::PortStatsRequest,
        T_PORT_STATS_REP => {
            let n = c.u32("port stats count")? as usize;
            let mut stats = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                stats.push(PortStats {
                    port: PortNo(c.u32("pstat port")?),
                    rx_packets: c.u64("pstat rx_packets")?,
                    tx_packets: c.u64("pstat tx_packets")?,
                    rx_bytes: c.u64("pstat rx_bytes")?,
                    tx_bytes: c.u64("pstat tx_bytes")?,
                    tx_dropped: c.u64("pstat tx_dropped")?,
                });
            }
            OfMessage::PortStatsReply(stats)
        }
        T_BARRIER => OfMessage::Barrier {
            xid: c.u32("barrier xid")?,
        },
        T_BARRIER_REP => OfMessage::BarrierReply {
            xid: c.u32("barrier xid")?,
        },
        tag => {
            return Err(OfError::BadTag {
                what: "message type",
                tag,
            })
        }
    };
    Ok((msg, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_tuple::tuple::TaskId;

    fn roundtrip(msg: OfMessage) {
        let encoded = encode(&msg);
        let (decoded, used) = decode(encoded.clone()).unwrap();
        assert_eq!(used, encoded.len());
        assert_eq!(decoded, msg);
    }

    #[test]
    fn roundtrip_simple_messages() {
        roundtrip(OfMessage::Hello);
        roundtrip(OfMessage::EchoRequest(42));
        roundtrip(OfMessage::EchoReply(42));
        roundtrip(OfMessage::FeaturesRequest);
        roundtrip(OfMessage::FlowStatsRequest);
        roundtrip(OfMessage::PortStatsRequest);
        roundtrip(OfMessage::Barrier { xid: 7 });
        roundtrip(OfMessage::BarrierReply { xid: 7 });
    }

    #[test]
    fn roundtrip_features_reply() {
        roundtrip(OfMessage::FeaturesReply {
            dpid: DatapathId(0xdead_beef),
            ports: vec![PortNo(0), PortNo(1), PortNo(2)],
        });
    }

    #[test]
    fn roundtrip_flow_mod_with_everything() {
        let m = FlowMatch::any()
            .in_port(PortNo(3))
            .dl_src(MacAddr::worker(1, TaskId(4)))
            .dl_dst(MacAddr::BROADCAST)
            .ether_type(0xffff);
        let fm = FlowMod::add(
            100,
            m,
            vec![
                Action::SetTunDst(2),
                Action::Output(PortNo::TUNNEL),
                Action::Group(GroupId(5)),
                Action::SetDlDst(MacAddr::worker(1, TaskId(9))),
                Action::ToController,
            ],
        )
        .with_idle_timeout(Duration::from_millis(1500))
        .with_hard_timeout(Duration::from_secs(30))
        .with_cookie(0xc00c13);
        roundtrip(OfMessage::FlowMod(fm));
    }

    #[test]
    fn roundtrip_group_mod() {
        roundtrip(OfMessage::GroupMod(GroupMod::add(
            GroupId(1),
            vec![
                Bucket {
                    weight: 3,
                    actions: vec![
                        Action::SetDlDst(MacAddr::worker(1, TaskId(1))),
                        Action::Output(PortNo(1)),
                    ],
                },
                Bucket {
                    weight: 1,
                    actions: vec![Action::Output(PortNo(2))],
                },
            ],
        )));
        roundtrip(OfMessage::GroupMod(GroupMod::delete(GroupId(9))));
    }

    #[test]
    fn roundtrip_packet_out_and_in() {
        roundtrip(OfMessage::PacketOut {
            in_port: PortNo::CONTROLLER,
            frame: Bytes::from(vec![1, 2, 3, 4]),
        });
        roundtrip(OfMessage::PacketIn {
            in_port: PortNo(5),
            reason: PacketInReason::Action,
            frame: Bytes::from(vec![9; 100]),
        });
    }

    #[test]
    fn roundtrip_port_status_all_reasons() {
        for reason in [
            PortStatusReason::Add,
            PortStatusReason::Delete,
            PortStatusReason::Modify,
        ] {
            roundtrip(OfMessage::PortStatus {
                reason,
                port: PortNo(2),
            });
        }
    }

    #[test]
    fn roundtrip_stats_replies() {
        roundtrip(OfMessage::FlowStatsReply(vec![FlowStats {
            matcher: FlowMatch::any().dl_dst(MacAddr::BROADCAST),
            priority: 5,
            cookie: 1,
            packets: 1000,
            bytes: 64_000,
        }]));
        roundtrip(OfMessage::PortStatsReply(vec![PortStats {
            port: PortNo(1),
            rx_packets: 10,
            tx_packets: 20,
            rx_bytes: 100,
            tx_bytes: 200,
            tx_dropped: 3,
        }]));
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let encoded = encode(&OfMessage::FlowMod(FlowMod::add(
            1,
            FlowMatch::any().in_port(PortNo(1)),
            vec![Action::Output(PortNo(2))],
        )));
        for cut in 0..encoded.len() {
            assert!(
                decode(encoded.slice(..cut)).is_err(),
                "prefix {cut} decoded"
            );
        }
    }

    #[test]
    fn unknown_message_type_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u32(1);
        raw.put_u8(0xee);
        assert_eq!(
            decode(raw.freeze()).unwrap_err(),
            OfError::BadTag {
                what: "message type",
                tag: 0xee
            }
        );
    }

    #[test]
    fn absurd_length_prefix_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u32(u32::MAX);
        raw.put_u8(0);
        assert!(matches!(
            decode(raw.freeze()).unwrap_err(),
            OfError::BadLength(_)
        ));
    }

    #[test]
    fn back_to_back_messages_decode_sequentially() {
        let a = encode(&OfMessage::Hello);
        let b = encode(&OfMessage::Barrier { xid: 3 });
        let mut joined = BytesMut::new();
        joined.extend_from_slice(&a);
        joined.extend_from_slice(&b);
        let joined = joined.freeze();
        let (m1, used1) = decode(joined.clone()).unwrap();
        assert_eq!(m1, OfMessage::Hello);
        let (m2, _) = decode(joined.slice(used1..)).unwrap();
        assert_eq!(m2, OfMessage::Barrier { xid: 3 });
    }
}
