//! Flow actions.

use crate::types::{GroupId, PortNo};
use typhoon_net::MacAddr;

/// An action applied to a matched frame, in list order.
///
/// These are exactly the actions Table 3 of the paper uses: `output`,
/// `set_tun_dst` (remote transfer via the host tunnel), output to the
/// controller, plus `group` (the select-group indirection of the SDN load
/// balancer) and `set_dl_dst` (destination rewriting inside group buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Forward out a port. `Output(PortNo::ALL)` floods.
    Output(PortNo),
    /// Set the tunnel destination host before the next `Output(TUNNEL)`.
    /// The operand is the peer host's address (host ID in this
    /// reproduction; an IP in the paper's deployment).
    SetTunDst(u32),
    /// Rewrite the destination MAC (select-group load balancing rewrites
    /// the destination worker ID, §4).
    SetDlDst(MacAddr),
    /// Defer to a group-table entry.
    Group(GroupId),
    /// Punt the frame to the SDN controller as a `PacketIn`.
    ToController,
}

impl Action {
    /// Short mnemonic used in rule dumps.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Action::Output(_) => "output",
            Action::SetTunDst(_) => "set_tun_dst",
            Action::SetDlDst(_) => "set_dl_dst",
            Action::Group(_) => "group",
            Action::ToController => "controller",
        }
    }
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Output(p) => write!(f, "output={p}"),
            Action::SetTunDst(h) => write!(f, "set_tun_dst=host{h}"),
            Action::SetDlDst(m) => write!(f, "set_dl_dst={m}"),
            Action::Group(g) => write!(f, "group={g}"),
            Action::ToController => write!(f, "output=CONTROLLER"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_table3_style() {
        assert_eq!(Action::Output(PortNo(4)).to_string(), "output=port4");
        assert_eq!(Action::SetTunDst(2).to_string(), "set_tun_dst=host2");
        assert_eq!(Action::Group(GroupId(1)).to_string(), "group=group1");
        assert_eq!(Action::ToController.to_string(), "output=CONTROLLER");
    }

    #[test]
    fn mnemonics_are_stable() {
        assert_eq!(Action::SetTunDst(0).mnemonic(), "set_tun_dst");
        assert_eq!(Action::ToController.mnemonic(), "controller");
    }
}
