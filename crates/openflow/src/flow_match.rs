//! Flow matching on the Table 3 fields.
//!
//! Typhoon's rules match only `in_port`, `dl_src`, `dl_dst` and
//! `ether_type` — the paper chose a custom EtherType precisely so rules
//! need no IPv4 wildcards (§3.4). Each field is optional; `None` is a
//! wildcard.

use crate::types::PortNo;
use typhoon_net::MacAddr;

/// The header fields a switch extracts from an incoming frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Port the frame arrived on.
    pub in_port: PortNo,
    /// Source MAC (worker address).
    pub dl_src: MacAddr,
    /// Destination MAC (worker address, broadcast or controller).
    pub dl_dst: MacAddr,
    /// EtherType.
    pub ether_type: u16,
}

/// A match over [`FrameMeta`]; `None` fields are wildcards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowMatch {
    /// Required ingress port.
    pub in_port: Option<PortNo>,
    /// Required source MAC.
    pub dl_src: Option<MacAddr>,
    /// Required destination MAC.
    pub dl_dst: Option<MacAddr>,
    /// Required EtherType.
    pub ether_type: Option<u16>,
}

impl FlowMatch {
    /// The match-everything wildcard.
    pub fn any() -> Self {
        Self::default()
    }

    /// Builder: require an ingress port.
    pub fn in_port(mut self, p: PortNo) -> Self {
        self.in_port = Some(p);
        self
    }

    /// Builder: require a source MAC.
    pub fn dl_src(mut self, m: MacAddr) -> Self {
        self.dl_src = Some(m);
        self
    }

    /// Builder: require a destination MAC.
    pub fn dl_dst(mut self, m: MacAddr) -> Self {
        self.dl_dst = Some(m);
        self
    }

    /// Builder: require an EtherType.
    pub fn ether_type(mut self, t: u16) -> Self {
        self.ether_type = Some(t);
        self
    }

    /// True when every non-wildcard field equals the frame's.
    pub fn matches(&self, meta: &FrameMeta) -> bool {
        self.in_port.is_none_or(|p| p == meta.in_port)
            && self.dl_src.is_none_or(|m| m == meta.dl_src)
            && self.dl_dst.is_none_or(|m| m == meta.dl_dst)
            && self.ether_type.is_none_or(|t| t == meta.ether_type)
    }

    /// Number of concrete (non-wildcard) fields; used as a deterministic
    /// tie-break between same-priority rules (more specific wins).
    pub fn specificity(&self) -> u32 {
        self.in_port.is_some() as u32
            + self.dl_src.is_some() as u32
            + self.dl_dst.is_some() as u32
            + self.ether_type.is_some() as u32
    }

    /// True when `self` would match every frame `other` matches (used by
    /// `FlowMod` delete-with-wildcards semantics).
    pub fn subsumes(&self, other: &FlowMatch) -> bool {
        fn field_ok<T: PartialEq>(wild: &Option<T>, specific: &Option<T>) -> bool {
            match (wild, specific) {
                (None, _) => true,
                (Some(a), Some(b)) => a == b,
                (Some(_), None) => false,
            }
        }
        field_ok(&self.in_port, &other.in_port)
            && field_ok(&self.dl_src, &other.dl_src)
            && field_ok(&self.dl_dst, &other.dl_dst)
            && field_ok(&self.ether_type, &other.ether_type)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_net::TYPHOON_ETHERTYPE;
    use typhoon_tuple::tuple::TaskId;

    fn meta() -> FrameMeta {
        FrameMeta {
            in_port: PortNo(3),
            dl_src: MacAddr::worker(1, TaskId(10)),
            dl_dst: MacAddr::worker(1, TaskId(20)),
            ether_type: TYPHOON_ETHERTYPE,
        }
    }

    #[test]
    fn wildcard_matches_everything() {
        assert!(FlowMatch::any().matches(&meta()));
        assert_eq!(FlowMatch::any().specificity(), 0);
    }

    #[test]
    fn exact_match_all_fields() {
        let m = meta();
        let fm = FlowMatch::any()
            .in_port(m.in_port)
            .dl_src(m.dl_src)
            .dl_dst(m.dl_dst)
            .ether_type(m.ether_type);
        assert!(fm.matches(&m));
        assert_eq!(fm.specificity(), 4);
    }

    #[test]
    fn single_field_mismatch_fails() {
        let m = meta();
        assert!(!FlowMatch::any().in_port(PortNo(9)).matches(&m));
        assert!(!FlowMatch::any()
            .dl_dst(MacAddr::worker(1, TaskId(99)))
            .matches(&m));
        assert!(!FlowMatch::any().ether_type(0x0800).matches(&m));
    }

    #[test]
    fn broadcast_dst_rule_matches_broadcast_frames_only() {
        // The one-to-many rule of Table 3.
        let rule = FlowMatch::any()
            .dl_dst(MacAddr::BROADCAST)
            .ether_type(TYPHOON_ETHERTYPE);
        let mut m = meta();
        assert!(!rule.matches(&m));
        m.dl_dst = MacAddr::BROADCAST;
        assert!(rule.matches(&m));
    }

    #[test]
    fn subsumption_orders_wildcards() {
        let wild = FlowMatch::any().in_port(PortNo(3));
        let narrow = FlowMatch::any().in_port(PortNo(3)).ether_type(1);
        assert!(wild.subsumes(&narrow));
        assert!(!narrow.subsumes(&wild));
        assert!(FlowMatch::any().subsumes(&wild));
        let other = FlowMatch::any().in_port(PortNo(4));
        assert!(!wild.subsumes(&other));
    }
}
