//! Microbenchmarks of the substrates every end-to-end number is built on:
//! tuple serialization (the cost Typhoon avoids repeating), packetization,
//! flow-table lookup, group WRR selection, ring transfer and the OpenFlow
//! wire codec.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;
use typhoon_model::{Grouping, RoutingState, TaskId};
use typhoon_net::{Depacketizer, Frame, MacAddr, Packetizer};
use typhoon_openflow::{
    wire, Action, FlowMatch, FlowMod, FrameMeta, OfMessage, PortNo, WrrSelector,
};
use typhoon_switch::{FlowCache, FlowTable};
use typhoon_tuple::ser::{decode_tuple, encode_tuple_vec, BatchEncoder, SerStats};
use typhoon_tuple::{Tuple, Value};

fn sample_tuple() -> Tuple {
    Tuple::new(
        TaskId(7),
        vec![
            Value::Int(123_456),
            Value::Str("the quick brown fox jumps over the lazy dog".into()),
            Value::Float(3.25),
        ],
    )
}

fn bench_serialization(c: &mut Criterion) {
    let stats = SerStats::default();
    let tuple = sample_tuple();
    let encoded = encode_tuple_vec(&tuple, &stats);
    let mut g = c.benchmark_group("tuple-ser");
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| encode_tuple_vec(black_box(&tuple), &stats))
    });
    g.bench_function("decode", |b| {
        b.iter(|| decode_tuple(black_box(&encoded), &stats).unwrap())
    });
    g.finish();
}

fn bench_packetizer(c: &mut Criterion) {
    let stats = SerStats::default();
    let blobs: Vec<bytes::Bytes> = (0..100)
        .map(|_| bytes::Bytes::from(encode_tuple_vec(&sample_tuple(), &stats)))
        .collect();
    let p = Packetizer::default();
    let src = MacAddr::worker(1, TaskId(1));
    let dst = MacAddr::worker(1, TaskId(2));
    let frames = p.pack(src, dst, &blobs);
    let mut g = c.benchmark_group("packetizer");
    g.throughput(Throughput::Elements(blobs.len() as u64));
    g.bench_function("pack-100-tuples", |b| b.iter(|| p.pack(src, dst, &blobs)));
    g.bench_function("depacketize-100-tuples", |b| {
        b.iter(|| {
            let mut d = Depacketizer::new();
            let mut n = 0;
            for f in &frames {
                n += d.push(f).unwrap().len();
            }
            n
        })
    });
    g.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    let mut table = FlowTable::new();
    let now = Instant::now();
    // 100 unicast rules + one broadcast rule, like a mid-size deployment.
    for i in 0..100u32 {
        table.apply(
            &FlowMod::add(
                50,
                FlowMatch::any()
                    .in_port(PortNo(i % 8))
                    .dl_src(MacAddr::worker(1, TaskId(i)))
                    .dl_dst(MacAddr::worker(1, TaskId(i + 100)))
                    .ether_type(0xffff),
                vec![Action::Output(PortNo(i % 8 + 1))],
            ),
            now,
        );
    }
    let hit = FrameMeta {
        in_port: PortNo(3),
        dl_src: MacAddr::worker(1, TaskId(3)),
        dl_dst: MacAddr::worker(1, TaskId(103)),
        ether_type: 0xffff,
    };
    let miss = FrameMeta {
        in_port: PortNo(9),
        dl_src: MacAddr::worker(9, TaskId(9)),
        dl_dst: MacAddr::worker(9, TaskId(9)),
        ether_type: 0x0800,
    };
    let mut g = c.benchmark_group("flow-table");
    g.bench_function("lookup-hit-100-rules", |b| {
        b.iter(|| table.lookup(black_box(&hit), 64, now))
    });
    g.bench_function("lookup-miss-100-rules", |b| {
        b.iter(|| table.lookup(black_box(&miss), 64, now))
    });
    g.finish();
}

fn bench_flow_cache(c: &mut Criterion) {
    let cache = FlowCache::new();
    let now = Instant::now();
    let meta = FrameMeta {
        in_port: PortNo(3),
        dl_src: MacAddr::worker(1, TaskId(3)),
        dl_dst: MacAddr::worker(1, TaskId(103)),
        ether_type: 0xffff,
    };
    cache.insert(
        &meta,
        &[Action::Output(PortNo(4))],
        std::time::Duration::from_secs(30),
        None,
        now,
    );
    let cold = FrameMeta {
        in_port: PortNo(9),
        dl_src: MacAddr::worker(9, TaskId(9)),
        dl_dst: MacAddr::worker(9, TaskId(9)),
        ether_type: 0x0800,
    };
    let mut g = c.benchmark_group("flow-cache");
    // The steady-state per-run datapath cost (must stay well under 1 µs
    // per tuple — one probe amortizes over a whole same-headed run).
    g.bench_function("probe-hit", |b| {
        b.iter(|| cache.probe(black_box(&meta), 1, 64, now))
    });
    g.bench_function("probe-miss", |b| {
        b.iter(|| cache.probe(black_box(&cold), 1, 64, now))
    });
    g.finish();
}

fn bench_batch_encoder(c: &mut Criterion) {
    let stats = SerStats::default();
    let tuple = sample_tuple();
    let mut g = c.benchmark_group("batch-encoder");
    g.throughput(Throughput::Elements(100));
    // One shared allocation for 100 blobs vs. 100 separate buffers.
    g.bench_function("encode-100-shared", |b| {
        b.iter(|| {
            let mut enc = BatchEncoder::new();
            for _ in 0..100 {
                enc.push(black_box(&tuple), &stats);
            }
            enc.finish()
        })
    });
    g.bench_function("encode-100-separate", |b| {
        b.iter(|| {
            (0..100)
                .map(|_| bytes::Bytes::from(encode_tuple_vec(black_box(&tuple), &stats)))
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

fn bench_routing_and_wrr(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    let tuple = sample_tuple();
    let hops: Vec<TaskId> = (0..8).map(TaskId).collect();
    let mut shuffle = RoutingState::new(Grouping::Shuffle, hops.clone(), vec![]);
    g.bench_function("shuffle-route", |b| {
        b.iter(|| shuffle.route(black_box(&tuple)))
    });
    let mut fields = RoutingState::new(Grouping::Fields(vec!["w".into()]), hops.clone(), vec![1]);
    g.bench_function("fields-route", |b| {
        b.iter(|| fields.route(black_box(&tuple)))
    });
    let mut wrr = WrrSelector::new(&[5, 3, 2, 1]);
    g.bench_function("wrr-select", |b| b.iter(|| wrr.next()));
    g.finish();
}

fn bench_ring(c: &mut Criterion) {
    let mut g = c.benchmark_group("ring");
    g.throughput(Throughput::Elements(1));
    g.bench_function("push-pop", |b| {
        let (tx, rx) = typhoon_net::ring(1024);
        let frame = Frame::typhoon(
            MacAddr::worker(1, TaskId(1)),
            MacAddr::worker(1, TaskId(2)),
            bytes::Bytes::from_static(&[0u8; 64]),
        );
        b.iter(|| {
            tx.push(frame.clone()).unwrap();
            rx.pop().unwrap().unwrap()
        })
    });
    g.finish();
    let mut g = c.benchmark_group("ring-batch");
    g.throughput(Throughput::Elements(64));
    g.bench_function("push-pop-batch-64", |b| {
        let (tx, rx) = typhoon_net::ring(1024);
        let frame = Frame::typhoon(
            MacAddr::worker(1, TaskId(1)),
            MacAddr::worker(1, TaskId(2)),
            bytes::Bytes::from_static(&[0u8; 64]),
        );
        let mut out = Vec::with_capacity(64);
        b.iter(|| {
            let mut batch: Vec<Frame> = (0..64).map(|_| frame.clone()).collect();
            tx.push_batch(&mut batch);
            out.clear();
            rx.pop_batch(&mut out, 64).unwrap()
        })
    });
    g.finish();
}

fn bench_openflow_wire(c: &mut Criterion) {
    let msg = OfMessage::FlowMod(
        FlowMod::add(
            50,
            FlowMatch::any()
                .in_port(PortNo(1))
                .dl_src(MacAddr::worker(1, TaskId(1)))
                .dl_dst(MacAddr::worker(1, TaskId(2)))
                .ether_type(0xffff),
            vec![Action::SetTunDst(2), Action::Output(PortNo::TUNNEL)],
        )
        .with_idle_timeout(std::time::Duration::from_secs(30)),
    );
    let encoded = wire::encode(&msg);
    let mut g = c.benchmark_group("openflow-wire");
    g.bench_function("encode-flowmod", |b| {
        b.iter(|| wire::encode(black_box(&msg)))
    });
    g.bench_function("decode-flowmod", |b| {
        b.iter(|| wire::decode(black_box(encoded.clone())).unwrap())
    });
    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = micro;
    config = configured();
    targets = bench_serialization, bench_packetizer, bench_flow_table,
              bench_flow_cache, bench_batch_encoder,
              bench_routing_and_wrr, bench_ring, bench_openflow_wire
}
criterion_main!(micro);
