//! Criterion bench for Fig. 8(a): end-to-end tuple forwarding through a
//! live two-worker topology, Storm baseline vs Typhoon.
//!
//! Measured as time per delivered tuple at the sink (iter_custom waits for
//! the sink counter to advance by the requested number of iterations while
//! the pipeline runs at full speed).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::{Duration, Instant};
use typhoon_bench::workloads::{forwarding_topology, register_standard, SinkCounter};
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_model::ComponentRegistry;
use typhoon_storm::{StormCluster, StormConfig};

fn wait_delivered(sink: &SinkCounter, n: u64) -> Duration {
    let start_count = sink.count();
    let t0 = Instant::now();
    while sink.count() < start_count + n {
        std::hint::spin_loop();
    }
    t0.elapsed()
}

fn bench_forwarding(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8-forwarding");
    g.throughput(Throughput::Elements(1));

    {
        let mut reg = ComponentRegistry::new();
        let (sink, _) = register_standard(&mut reg, 100, 64);
        let cluster = StormCluster::new(StormConfig::local(1), reg);
        let _h = cluster.submit(forwarding_topology()).expect("submit");
        // Let the pipeline warm up before sampling.
        std::thread::sleep(Duration::from_millis(300));
        g.bench_function("storm-local", |b| {
            b.iter_custom(|iters| wait_delivered(&sink, iters))
        });
        cluster.shutdown();
    }

    {
        let mut reg = ComponentRegistry::new();
        let (sink, _) = register_standard(&mut reg, 100, 64);
        let cluster =
            TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(250), reg).expect("cluster");
        let _h = cluster.submit(forwarding_topology()).expect("submit");
        std::thread::sleep(Duration::from_millis(300));
        g.bench_function("typhoon-local-batch250", |b| {
            b.iter_custom(|iters| wait_delivered(&sink, iters))
        });
        cluster.shutdown();
    }

    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = fig8;
    config = configured();
    targets = bench_forwarding
}
criterion_main!(fig8);
