//! Criterion bench for Fig. 9: one-to-many delivery through a live
//! broadcast topology (4 sinks), Storm baseline vs Typhoon.
//!
//! Measured as time per *delivered copy* at the sinks. Storm serializes
//! once per destination; Typhoon serializes once and lets the switch
//! replicate the refcounted payload.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::{Duration, Instant};
use typhoon_bench::workloads::{broadcast_topology, register_standard, SinkCounter};
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_model::ComponentRegistry;
use typhoon_storm::{StormCluster, StormConfig};

const SINKS: usize = 4;

fn wait_delivered(sink: &SinkCounter, n: u64) -> Duration {
    let start_count = sink.count();
    let t0 = Instant::now();
    while sink.count() < start_count + n {
        std::hint::spin_loop();
    }
    t0.elapsed()
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9-broadcast");
    g.throughput(Throughput::Elements(1));

    {
        let mut reg = ComponentRegistry::new();
        let (sink, _) = register_standard(&mut reg, 100, 64);
        let cluster = StormCluster::new(StormConfig::local(1), reg);
        let _h = cluster.submit(broadcast_topology(SINKS)).expect("submit");
        std::thread::sleep(Duration::from_millis(300));
        g.bench_function("storm-4-sinks", |b| {
            b.iter_custom(|iters| wait_delivered(&sink, iters))
        });
        cluster.shutdown();
    }

    {
        let mut reg = ComponentRegistry::new();
        let (sink, _) = register_standard(&mut reg, 100, 64);
        let cluster =
            TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(250), reg).expect("cluster");
        let _h = cluster.submit(broadcast_topology(SINKS)).expect("submit");
        std::thread::sleep(Duration::from_millis(300));
        g.bench_function("typhoon-4-sinks", |b| {
            b.iter_custom(|iters| wait_delivered(&sink, iters))
        });
        cluster.shutdown();
    }

    g.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = fig9;
    config = configured();
    targets = bench_broadcast
}
criterion_main!(fig9);
