//! Integration test for the end-to-end tuple tracer: a two-host word-count
//! topology runs with acking and 1-in-1 sampling; every retained complete
//! trace must carry the full canonical hop sequence in order, with
//! non-decreasing timestamps.

use std::time::{Duration, Instant};
use typhoon_bench::workloads::{CountBolt, SplitBolt};
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_model::{ComponentRegistry, Emitter, Fields, Grouping, LogicalTopology, Spout};
use typhoon_trace::Hop;
use typhoon_tuple::Value;

const SENTENCES: u64 = 200;

struct BoundedSentences {
    emitted: u64,
}

impl Spout for BoundedSentences {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        if self.emitted >= SENTENCES {
            return false;
        }
        out.emit(vec![Value::Str("the quick brown fox".into())]);
        self.emitted += 1;
        true
    }
}

fn word_count() -> LogicalTopology {
    LogicalTopology::builder("trace-wc")
        .spout("input", "sentences", 1, Fields::new(["sentence"]))
        .bolt("split", "split", 2, Fields::new(["word"]))
        .bolt("count", "count", 2, Fields::new(["word", "count"]))
        .edge("input", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["word".into()]))
        .build()
        .expect("valid topology")
}

#[test]
fn every_complete_trace_has_ordered_hops() {
    let mut reg = ComponentRegistry::new();
    reg.register_spout("sentences", || BoundedSentences { emitted: 0 });
    reg.register_bolt("split", || SplitBolt);
    reg.register_bolt("count", CountBolt::new);
    // Batch size 1 gives every tuple its own frame, so each traced tuple
    // crosses the switch datapath under its own trace id.
    let config = TyphoonConfig::new(2)
        .with_batch_size(1)
        .with_acking(Duration::from_secs(10), 64)
        .with_trace(1);
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    let _handle = cluster.submit(word_count()).expect("submit");
    let tracer = cluster.tracer().expect("tracing enabled").clone();

    let deadline = Instant::now() + Duration::from_secs(30);
    while tracer.completed() < SENTENCES && Instant::now() < deadline {
        tracer.collect();
        std::thread::sleep(Duration::from_millis(20)); // LINT: allow-sleep(test poll loop, bounded by the deadline)
    }
    assert_eq!(
        tracer.completed(),
        SENTENCES,
        "every sampled root traces to completion"
    );

    let dump = tracer.dump(64);
    assert!(!dump.slowest.is_empty());
    for rec in &dump.slowest {
        assert!(rec.is_complete());
        assert!(
            rec.contains_ordered(&Hop::CANONICAL),
            "trace {} missing canonical hops: {:?}",
            rec.id,
            rec.hops
        );
        for w in rec.hops.windows(2) {
            assert!(
                w[0].1 <= w[1].1,
                "timestamps decrease in trace {}: {:?}",
                rec.id,
                rec.hops
            );
        }
        assert_eq!(rec.hops.first().map(|(h, _)| *h), Some(Hop::SpoutEmit));
        assert!(rec.e2e_nanos() > 0);
    }
    // Per-hop aggregates cover the full canonical path (deltas land under
    // the arriving hop's label, so the first hop has none), and their
    // means telescope to the independently measured e2e mean.
    for hop in Hop::CANONICAL {
        if hop == Hop::SpoutEmit {
            continue;
        }
        assert!(
            dump.hops.iter().any(|s| s.hop == hop),
            "no aggregate for hop {}",
            hop.label()
        );
    }
    let hop_sum: f64 = dump
        .hops
        .iter()
        .map(|s| s.mean_ns * s.count as f64 / dump.completed as f64)
        .sum();
    let e2e = tracer.e2e_mean_nanos();
    assert!(
        (hop_sum - e2e).abs() / e2e < 0.10,
        "hop-sum {hop_sum:.0}ns deviates more than 10% from e2e mean {e2e:.0}ns"
    );
    cluster.shutdown();
}
