//! End-to-end tests of the `bench-gate` binary: exit codes, the delta
//! table, and `--bless` baseline refresh on synthetic reports.

use std::path::{Path, PathBuf};
use std::process::Command;
use typhoon_bench::report::{bench_file_name, Report};

fn gate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench-gate"))
}

struct TempDirs {
    root: PathBuf,
    base: PathBuf,
    fresh: PathBuf,
}

impl TempDirs {
    fn new(tag: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("typhoon-gate-cli-{tag}-{}", std::process::id()));
        let base = root.join("base");
        let fresh = root.join("fresh");
        std::fs::create_dir_all(&base).expect("mkdir base");
        std::fs::create_dir_all(&fresh).expect("mkdir fresh");
        TempDirs { root, base, fresh }
    }
}

impl Drop for TempDirs {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

fn sample(tput: f64) -> Report {
    let mut r = Report::new("fig9", "one-to-many", "short").with_seed(7);
    r.throughput("throughput.local", tput);
    r.exact("ser_per_tuple_is_one", 1.0, "bool");
    r
}

fn write(dir: &Path, report: &Report) {
    report
        .write(&dir.join(bench_file_name(&report.figure)))
        .expect("write report");
}

#[test]
fn unchanged_matrix_passes_with_exit_zero() {
    let dirs = TempDirs::new("pass");
    write(&dirs.base, &sample(100_000.0));
    write(&dirs.fresh, &sample(99_000.0)); // ~1% noise: well within tolerance
    let out = gate()
        .args(["--baseline"])
        .arg(&dirs.base)
        .arg("--fresh")
        .arg(&dirs.fresh)
        .args(["--figures", "fig9"])
        .output()
        .expect("run bench-gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "expected pass:\n{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
}

#[test]
fn perturbed_metric_fails_with_delta_table() {
    let dirs = TempDirs::new("fail");
    write(&dirs.base, &sample(100_000.0));
    write(&dirs.fresh, &sample(10_000.0)); // 90% drop: beyond tolerance
    let out = gate()
        .arg("--baseline")
        .arg(&dirs.base)
        .arg("--fresh")
        .arg(&dirs.fresh)
        .args(["--figures", "fig9"])
        .output()
        .expect("run bench-gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "exit 1 on regression:\n{stdout}"
    );
    assert!(stdout.contains("FAIL"), "{stdout}");
    assert!(stdout.contains("throughput.local"), "{stdout}");
    assert!(stdout.contains("-90.0%"), "delta column:\n{stdout}");
}

#[test]
fn bless_refreshes_baselines() {
    let dirs = TempDirs::new("bless");
    write(&dirs.base, &sample(100_000.0));
    write(&dirs.fresh, &sample(10_000.0));
    let out = gate()
        .arg("--baseline")
        .arg(&dirs.base)
        .arg("--fresh")
        .arg(&dirs.fresh)
        .args(["--figures", "fig9", "--bless"])
        .output()
        .expect("run bench-gate --bless");
    assert!(out.status.success());
    let refreshed =
        Report::read(&dirs.base.join(bench_file_name("fig9"))).expect("refreshed baseline");
    assert_eq!(
        refreshed.find("throughput.local").map(|m| m.value),
        Some(10_000.0)
    );
    // And the gate passes against the blessed baseline.
    let out = gate()
        .arg("--baseline")
        .arg(&dirs.base)
        .arg("--fresh")
        .arg(&dirs.fresh)
        .args(["--figures", "fig9"])
        .output()
        .expect("re-run bench-gate");
    assert!(out.status.success());
}

#[test]
fn usage_errors_exit_two() {
    let out = gate().output().expect("run bench-gate");
    assert_eq!(out.status.code(), Some(2), "--fresh is required");
    let out = gate()
        .args(["--fresh", "/nonexistent", "--bogus"])
        .output()
        .expect("run bench-gate");
    assert_eq!(out.status.code(), Some(2), "unknown flag");
}

#[test]
fn slack_relaxes_the_gate() {
    let dirs = TempDirs::new("slack");
    write(&dirs.base, &sample(100_000.0));
    write(&dirs.fresh, &sample(30_000.0)); // 70% drop
    let run = |slack: &str| {
        gate()
            .arg("--baseline")
            .arg(&dirs.base)
            .arg("--fresh")
            .arg(&dirs.fresh)
            .args(["--figures", "fig9", "--slack", slack])
            .output()
            .expect("run bench-gate")
    };
    assert_eq!(
        run("1").status.code(),
        Some(1),
        "fails at slack 1 (tol 50%)"
    );
    assert!(run("1.6").status.success(), "passes at slack 1.6 (tol 80%)");
}
