//! Machine-readable experiment reports — the `BENCH_<figure>.json` schema.
//!
//! Every `exp_*` binary can serialize the figures it reproduces into a
//! stable, versioned JSON document (`--json <path>`), alongside the
//! paper-style stdout tables. The committed `BENCH_<figure>.json` files at
//! the repository root are the performance *trajectory*: each PR re-runs
//! the short-mode matrix and the [`crate::gate`] comparator checks the
//! fresh run against these baselines with direction-aware tolerances.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "figure": "fig9",
//!   "title": "one-to-many communication",
//!   "mode": "short",
//!   "seed": 3298844397,
//!   "git_sha": "ebe4d69",
//!   "metrics": [
//!     {"name": "throughput.local.typhoon.sinks2", "value": 180524.0,
//!      "unit": "tuples/sec", "direction": "higher", "tolerance": 0.5}
//!   ],
//!   "series": [
//!     {"name": "fig10b/typhoon-count-workers", "unit": "tuples/sec",
//!      "points": [0.0, 11983.0, 12050.0]}
//!   ]
//! }
//! ```
//!
//! * `direction` — `"higher"` (throughput-like: a drop is a regression) or
//!   `"lower"` (latency/recovery-time-like: growth is a regression).
//! * `tolerance` — relative slack the gate allows in the *bad* direction
//!   before failing (0.5 = a higher-is-better value may drop up to 50 %).
//!   The emitter sets it per metric, because the emitter knows which
//!   numbers are noisy (wall-clock timings) and which are mechanisms
//!   (serializations per tuple, exactness flags — tolerance 0).
//! * `series` — fixed-length timelines for plotting; the gate does not
//!   compare them point-by-point, they document the shape behind the
//!   summary metrics.
//! * Non-finite metric values serialize as `null` and parse back as NaN;
//!   the gate fails any comparison involving NaN.
//!
//! The external deps allowed in this workspace do not include a JSON
//! crate, so (de)serialization is hand-rolled here, like
//! `typhoon-lint --json` and `typhoon-trace`'s `TraceDump::to_json`.

use std::fmt::Write as _;
use std::path::Path;
use typhoon_metrics::HistogramSummary;

/// Version stamped into every report; [`Report::from_json`] rejects
/// documents with any other version so the gate never silently compares
/// incompatible schemas.
pub const SCHEMA_VERSION: u64 = 1;

/// Default relative tolerance for wall-clock throughput metrics (noisy:
/// shared CI runners easily swing ±30 %).
pub const THROUGHPUT_TOL: f64 = 0.5;

/// Default relative tolerance for wall-clock latency / duration metrics
/// (noisier still at millisecond scale; may double before failing).
pub const LATENCY_TOL: f64 = 1.0;

/// Which way is better for a metric — decides what the gate treats as a
/// regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughput-like: a drop beyond tolerance is a regression.
    HigherIsBetter,
    /// Latency-like: growth beyond tolerance is a regression.
    LowerIsBetter,
}

impl Direction {
    /// The schema's string form.
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::HigherIsBetter => "higher",
            Direction::LowerIsBetter => "lower",
        }
    }

    /// Parses the schema's string form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "higher" => Some(Direction::HigherIsBetter),
            "lower" => Some(Direction::LowerIsBetter),
            _ => None,
        }
    }
}

/// One gated scalar result.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Stable dotted name, e.g. `throughput.local.typhoon.b100`.
    pub name: String,
    /// The measured value (NaN round-trips as JSON `null`).
    pub value: f64,
    /// Unit label, e.g. `tuples/sec`, `ms`, `count`, `bool`.
    pub unit: String,
    /// Which way is better.
    pub direction: Direction,
    /// Relative slack allowed in the bad direction before the gate fails.
    pub tolerance: f64,
}

/// One ungated fixed-length timeline (documentation of shape).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Stable name, matching the stdout table label.
    pub name: String,
    /// Unit of each point.
    pub unit: String,
    /// One point per window, zero-padded to the figure's fixed length.
    pub points: Vec<f64>,
}

/// A machine-readable experiment report (one figure / one binary run).
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Always [`SCHEMA_VERSION`] for freshly built reports.
    pub schema_version: u64,
    /// Figure id: `fig8` … `fig14`, `ablation`, `chaos`, `recovery`.
    pub figure: String,
    /// Human-readable one-liner.
    pub title: String,
    /// `"short"` or `"full"` — the gate refuses to compare across modes.
    pub mode: String,
    /// The workload seed, when the experiment is seeded.
    pub seed: Option<u64>,
    /// `git rev-parse --short HEAD` at emission time (`unknown` outside a
    /// work tree).
    pub git_sha: String,
    /// Gated scalar results.
    pub metrics: Vec<Metric>,
    /// Ungated timelines.
    pub series: Vec<Series>,
}

impl Report {
    /// A new empty report for `figure`, stamped with the current git sha.
    pub fn new(figure: &str, title: &str, mode: &str) -> Self {
        Report {
            schema_version: SCHEMA_VERSION,
            figure: figure.to_string(),
            title: title.to_string(),
            mode: mode.to_string(),
            seed: None,
            git_sha: git_short_sha(),
            metrics: Vec::new(),
            series: Vec::new(),
        }
    }

    /// Records the workload seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Adds a metric with full control over unit/direction/tolerance.
    pub fn metric(
        &mut self,
        name: impl Into<String>,
        value: f64,
        unit: &str,
        direction: Direction,
        tolerance: f64,
    ) -> &mut Self {
        self.metrics.push(Metric {
            name: name.into(),
            value,
            unit: unit.to_string(),
            direction,
            tolerance,
        });
        self
    }

    /// Adds a throughput metric (`tuples/sec`, higher is better,
    /// [`THROUGHPUT_TOL`]).
    pub fn throughput(&mut self, name: impl Into<String>, tuples_per_sec: f64) -> &mut Self {
        self.metric(
            name,
            tuples_per_sec,
            "tuples/sec",
            Direction::HigherIsBetter,
            THROUGHPUT_TOL,
        )
    }

    /// Adds a duration metric in milliseconds (lower is better).
    pub fn time_ms(&mut self, name: impl Into<String>, ms: f64, tolerance: f64) -> &mut Self {
        self.metric(name, ms, "ms", Direction::LowerIsBetter, tolerance)
    }

    /// Adds an exactness/mechanism metric that may not regress at all
    /// (tolerance 0): booleans as 0/1, exact counts, parallelism.
    pub fn exact(&mut self, name: impl Into<String>, value: f64, unit: &str) -> &mut Self {
        self.metric(name, value, unit, Direction::HigherIsBetter, 0.0)
    }

    /// Adds the standard latency quantile ladder (`<prefix>.p50_ms`,
    /// `.p99_ms`, `.mean_ms`) from a histogram summary, all
    /// lower-is-better with the given tolerance.
    pub fn quantiles(
        &mut self,
        prefix: &str,
        summary: &HistogramSummary,
        tolerance: f64,
    ) -> &mut Self {
        self.time_ms(
            format!("{prefix}.p50_ms"),
            summary.p50_ns as f64 / 1e6,
            tolerance,
        );
        self.time_ms(
            format!("{prefix}.p99_ms"),
            summary.p99_ns as f64 / 1e6,
            tolerance,
        );
        self.time_ms(
            format!("{prefix}.mean_ms"),
            summary.mean_ns / 1e6,
            tolerance,
        )
    }

    /// Adds an ungated timeline.
    pub fn push_series(
        &mut self,
        name: impl Into<String>,
        unit: &str,
        points: Vec<f64>,
    ) -> &mut Self {
        self.series.push(Series {
            name: name.into(),
            unit: unit.to_string(),
            points,
        });
        self
    }

    /// Looks a metric up by name.
    pub fn find(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Serializes to the schema's JSON form (2-space indent: the files are
    /// committed, so diffs should be line-per-field readable).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"figure\": {},", quote(&self.figure));
        let _ = writeln!(out, "  \"title\": {},", quote(&self.title));
        let _ = writeln!(out, "  \"mode\": {},", quote(&self.mode));
        match self.seed {
            Some(seed) => {
                let _ = writeln!(out, "  \"seed\": {seed},");
            }
            None => out.push_str("  \"seed\": null,\n"),
        }
        let _ = writeln!(out, "  \"git_sha\": {},", quote(&self.git_sha));
        out.push_str("  \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            let sep = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"value\": {}, \"unit\": {}, \"direction\": {}, \"tolerance\": {}}}{sep}",
                quote(&m.name),
                num(m.value),
                quote(&m.unit),
                quote(m.direction.as_str()),
                num(m.tolerance),
            );
        }
        out.push_str(if self.metrics.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            let sep = if i + 1 < self.series.len() { "," } else { "" };
            let points: Vec<String> = s.points.iter().map(|p| num(*p)).collect();
            let _ = write!(
                out,
                "\n    {{\"name\": {}, \"unit\": {}, \"points\": [{}]}}{sep}",
                quote(&s.name),
                quote(&s.unit),
                points.join(", "),
            );
        }
        out.push_str(if self.series.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push('}');
        out
    }

    /// Parses a schema-version-1 document; rejects other versions and
    /// structurally invalid documents with a descriptive error.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let value = json::parse(text)?;
        let obj = value.as_obj().ok_or("top level must be an object")?;
        let version = get(obj, "schema_version")?
            .as_u64()
            .ok_or("schema_version must be an unsigned integer")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this build reads version {SCHEMA_VERSION})"
            ));
        }
        let mut report = Report {
            schema_version: version,
            figure: get_str(obj, "figure")?,
            title: get_str(obj, "title")?,
            mode: get_str(obj, "mode")?,
            seed: match get(obj, "seed")? {
                json::Json::Null => None,
                v => Some(
                    v.as_u64()
                        .ok_or("seed must be an unsigned integer or null")?,
                ),
            },
            git_sha: get_str(obj, "git_sha")?,
            metrics: Vec::new(),
            series: Vec::new(),
        };
        for (i, m) in get(obj, "metrics")?
            .as_arr()
            .ok_or("metrics must be an array")?
            .iter()
            .enumerate()
        {
            let m = m
                .as_obj()
                .ok_or_else(|| format!("metrics[{i}] must be an object"))?;
            let direction = get_str(m, "direction")?;
            report.metrics.push(Metric {
                name: get_str(m, "name")?,
                value: get(m, "value")?
                    .as_f64()
                    .ok_or_else(|| format!("metrics[{i}].value must be a number or null"))?,
                unit: get_str(m, "unit")?,
                direction: Direction::parse(&direction).ok_or_else(|| {
                    format!(
                        "metrics[{i}].direction must be \"higher\" or \"lower\", got {direction:?}"
                    )
                })?,
                tolerance: get(m, "tolerance")?
                    .as_f64()
                    .ok_or_else(|| format!("metrics[{i}].tolerance must be a number"))?,
            });
        }
        for (i, s) in get(obj, "series")?
            .as_arr()
            .ok_or("series must be an array")?
            .iter()
            .enumerate()
        {
            let s = s
                .as_obj()
                .ok_or_else(|| format!("series[{i}] must be an object"))?;
            let points = get(s, "points")?
                .as_arr()
                .ok_or_else(|| format!("series[{i}].points must be an array"))?
                .iter()
                .map(|p| {
                    p.as_f64()
                        .ok_or_else(|| format!("series[{i}].points must hold numbers"))
                })
                .collect::<Result<Vec<f64>, String>>()?;
            report.series.push(Series {
                name: get_str(s, "name")?,
                unit: get_str(s, "unit")?,
                points,
            });
        }
        Ok(report)
    }

    /// Writes the JSON document (plus trailing newline) to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Reads and parses a report, prefixing errors with the path.
    pub fn read(path: &Path) -> Result<Report, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// The canonical committed file name for a figure: `BENCH_<figure>.json`.
pub fn bench_file_name(figure: &str) -> String {
    format!("BENCH_{figure}.json")
}

/// `git rev-parse --short HEAD`, or `"unknown"` outside a work tree.
pub fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// JSON string literal with escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number literal: shortest round-trip form; non-finite becomes
/// `null` (parsed back as NaN).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn get<'a>(obj: &'a [(String, json::Json)], key: &str) -> Result<&'a json::Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing required key {key:?}"))
}

fn get_str(obj: &[(String, json::Json)], key: &str) -> Result<String, String> {
    get(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{key} must be a string"))
}

/// Minimal recursive-descent JSON parser — just enough for the schema
/// above (objects, arrays, strings with escapes, numbers, booleans, null).
mod json {
    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (f64 precision; u64 seeds fit: they are < 2^53 here).
        Num(f64),
        /// String literal.
        Str(String),
        /// Array.
        Arr(Vec<Json>),
        /// Object, insertion-ordered.
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        pub fn as_obj(&self) -> Option<&[(String, Json)]> {
            match self {
                Json::Obj(o) => Some(o),
                _ => None,
            }
        }
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }
        /// Numbers parse to f64; `null` reads as NaN so non-finite metric
        /// values round-trip (the gate fails NaN comparisons explicitly).
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                Json::Null => Some(f64::NAN),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                    Some(*n as u64)
                }
                _ => None,
            }
        }
    }

    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing garbage at offset {}", p.pos));
        }
        Ok(v)
    }

    struct Parser {
        chars: Vec<char>,
        pos: usize,
    }

    impl Parser {
        fn peek(&self) -> Option<char> {
            self.chars.get(self.pos).copied()
        }

        fn bump(&mut self) -> Result<char, String> {
            let c = self.peek().ok_or("unexpected end of input")?;
            self.pos += 1;
            Ok(c)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, c: char) -> Result<(), String> {
            let got = self.bump()?;
            if got != c {
                return Err(format!(
                    "expected {c:?} at offset {}, got {got:?}",
                    self.pos - 1
                ));
            }
            Ok(())
        }

        fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
            for c in word.chars() {
                self.expect(c)?;
            }
            Ok(value)
        }

        fn value(&mut self) -> Result<Json, String> {
            self.skip_ws();
            match self.peek().ok_or("unexpected end of input")? {
                '{' => self.object(),
                '[' => self.array(),
                '"' => Ok(Json::Str(self.string()?)),
                't' => self.literal("true", Json::Bool(true)),
                'f' => self.literal("false", Json::Bool(false)),
                'n' => self.literal("null", Json::Null),
                '-' | '0'..='9' => self.number(),
                c => Err(format!("unexpected character {c:?} at offset {}", self.pos)),
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect('{')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some('}') {
                self.pos += 1;
                return Ok(Json::Obj(out));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(':')?;
                out.push((key, self.value()?));
                self.skip_ws();
                match self.bump()? {
                    ',' => continue,
                    '}' => return Ok(Json::Obj(out)),
                    c => return Err(format!("expected ',' or '}}', got {c:?}")),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect('[')?;
            let mut out = Vec::new();
            self.skip_ws();
            if self.peek() == Some(']') {
                self.pos += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                out.push(self.value()?);
                self.skip_ws();
                match self.bump()? {
                    ',' => continue,
                    ']' => return Ok(Json::Arr(out)),
                    c => return Err(format!("expected ',' or ']', got {c:?}")),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect('"')?;
            let mut out = String::new();
            loop {
                match self.bump()? {
                    '"' => return Ok(out),
                    '\\' => match self.bump()? {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect('\\')?;
                                self.expect('u')?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00))
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid \\u escape {code:#x}"))?,
                            );
                        }
                        c => return Err(format!("invalid escape \\{c}")),
                    },
                    c => out.push(c),
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, String> {
            let mut v = 0u32;
            for _ in 0..4 {
                let c = self.bump()?;
                v = v * 16
                    + c.to_digit(16)
                        .ok_or_else(|| format!("invalid hex digit {c:?}"))?;
            }
            Ok(v)
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some('-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some('0'..='9' | '.' | 'e' | 'E' | '+' | '-')) {
                self.pos += 1;
            }
            let text: String = self.chars[start..self.pos].iter().collect();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("invalid number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("fig9", "one-to-many communication", "short").with_seed(42);
        r.throughput("throughput.local.typhoon.sinks2", 180_524.0);
        r.metric(
            "ser_per_tuple.local.typhoon.sinks2",
            1.0,
            "count",
            Direction::LowerIsBetter,
            0.25,
        );
        r.exact("recovery.exact.worker", 1.0, "bool");
        r.time_ms("latency.local.p99_ms", 12.75, LATENCY_TOL);
        r.push_series("fig10b/typhoon", "tuples/sec", vec![0.0, 11983.5, 12050.0]);
        r
    }

    #[test]
    fn round_trips_through_json() {
        let r = sample();
        let json = r.to_json();
        let parsed = Report::from_json(&json).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn empty_report_round_trips() {
        let r = Report::new("fig8", "baseline", "full");
        assert_eq!(r.seed, None);
        let parsed = Report::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn rejects_wrong_schema_version() {
        let json = sample()
            .to_json()
            .replace("\"schema_version\": 1,", "\"schema_version\": 999,");
        let err = Report::from_json(&json).expect_err("must reject");
        assert!(err.contains("999"), "{err}");
        assert!(err.contains("version 1"), "{err}");
    }

    #[test]
    fn rejects_missing_keys_and_bad_direction() {
        let json = sample().to_json().replace("\"figure\": \"fig9\",", "");
        assert!(Report::from_json(&json)
            .expect_err("missing figure")
            .contains("figure"));
        let json = sample().to_json().replace("\"higher\"", "\"sideways\"");
        assert!(Report::from_json(&json)
            .expect_err("bad direction")
            .contains("sideways"));
    }

    #[test]
    fn non_finite_values_round_trip_as_null() {
        let mut r = Report::new("fig8", "t", "full");
        r.throughput("inf", f64::INFINITY);
        let json = r.to_json();
        assert!(json.contains("\"value\": null"), "{json}");
        let parsed = Report::from_json(&json).expect("parse");
        assert!(parsed.metrics[0].value.is_nan());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut r = Report::new("fig8", "quote \" backslash \\ newline \n tab \t", "full");
        r.throughput("weird \"name\"", 1.0);
        let parsed = Report::from_json(&r.to_json()).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn file_name_is_canonical() {
        assert_eq!(bench_file_name("fig8"), "BENCH_fig8.json");
    }

    #[test]
    fn write_and_read_file() {
        let dir = std::env::temp_dir().join(format!("typhoon-report-{}", std::process::id()));
        let path = dir.join(bench_file_name("fig9"));
        let r = sample();
        r.write(&path).expect("write");
        let read = Report::read(&path).expect("read");
        assert_eq!(read, r);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantile_ladder_metrics() {
        let s = typhoon_metrics::HistogramSummary {
            count: 10,
            mean_ns: 2_000_000.0,
            min_ns: 1_000_000,
            p50_ns: 1_500_000,
            p90_ns: 3_000_000,
            p99_ns: 4_000_000,
            p999_ns: 4_500_000,
            max_ns: 5_000_000,
        };
        let mut r = Report::new("fig8", "t", "full");
        r.quantiles("latency.local", &s, LATENCY_TOL);
        assert_eq!(r.find("latency.local.p50_ms").map(|m| m.value), Some(1.5));
        assert_eq!(r.find("latency.local.p99_ms").map(|m| m.value), Some(4.0));
        assert_eq!(r.find("latency.local.mean_ms").map(|m| m.value), Some(2.0));
        assert!(r
            .metrics
            .iter()
            .all(|m| m.direction == Direction::LowerIsBetter));
    }
}
