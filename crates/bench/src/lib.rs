//! # typhoon-bench — the §6 evaluation harness
//!
//! Workload generators, shared stream components and measurement helpers
//! used by the criterion benches (`benches/`) and the per-figure
//! experiment binaries (`src/bin/exp_*.rs`). Each binary regenerates one
//! table or figure of the paper, printing the same rows/series the paper
//! reports; EXPERIMENTS.md records paper-reported vs measured values.
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_fig8`  | Fig. 8(a) forwarding, 8(b) +acker, 8(c)/(d) latency CDFs |
//! | `exp_fig9`  | Fig. 9 one-to-many throughput, 2–6 sinks |
//! | `exp_fig10` | Fig. 10 fault-recovery timelines |
//! | `exp_fig11` | Fig. 11 auto-scaling timelines |
//! | `exp_fig12` | Fig. 12 live-debugging overhead + Table 5 |
//! | `exp_fig14` | Figs. 13/14 Yahoo analytics + runtime logic swap |
//!
//! Every experiment binary also understands `--json <path>` (write the
//! figure's machine-readable [`report::Report`] as `BENCH_<figure>.json`)
//! and `--short` (compressed timelines for CI and baseline generation).
//! The `bench-gate` binary compares a fresh matrix against the committed
//! baselines with direction-aware tolerances (see [`gate`]).

#![warn(missing_docs)]

pub mod gate;
pub mod harness;
pub mod report;
pub mod workloads;
pub mod yahoo;
