//! Measurement helpers shared by the experiment binaries.

use std::time::{Duration, Instant};
use typhoon_metrics::RateMeter;

/// Waits `dur` while the workload runs.
pub fn run_for(dur: Duration) {
    std::thread::sleep(dur); // LINT: allow-sleep(bench harness: the wait IS the measurement window)
}

/// Measures the steady-state rate of a shared counter: samples `counter`
/// at start and end of `dur`, returns events/sec.
pub fn measure_rate(counter: impl Fn() -> u64, warmup: Duration, dur: Duration) -> f64 {
    std::thread::sleep(warmup); // LINT: allow-sleep(bench harness: warmup window before sampling)
    let start_count = counter();
    let start = Instant::now();
    std::thread::sleep(dur); // LINT: allow-sleep(bench harness: the wait IS the measurement window)
    let elapsed = start.elapsed().as_secs_f64();
    (counter() - start_count) as f64 / elapsed
}

/// Prints one paper-style throughput row.
pub fn print_rate_row(label: &str, tuples_per_sec: f64) {
    println!("{label:<40} {:>12.0} tuples/sec", tuples_per_sec);
}

/// Prints a per-second timeline from a meter (the Fig. 10–12/14 series).
pub fn print_timeline(label: &str, meter: &RateMeter, from: usize, to: usize) {
    println!("# {label}: time_sec tuples_per_sec");
    for (i, rate) in meter.rates_per_sec().iter().enumerate() {
        if i >= from && i < to {
            println!("{label} {i:>4} {rate:>12.0}");
        }
    }
}

/// Prints the sum-of-meters timeline (aggregate sink throughput).
pub fn print_aggregate_timeline(label: &str, meters: &[RateMeter], seconds: usize) {
    println!("# {label}: time_sec aggregate_tuples_per_sec");
    let series: Vec<Vec<f64>> = meters.iter().map(|m| m.rates_per_sec()).collect();
    for t in 0..seconds {
        let total: f64 = series
            .iter()
            .map(|s| s.get(t).copied().unwrap_or(0.0))
            .sum();
        println!("{label} {t:>4} {total:>12.0}");
    }
}

/// Prints CDF points `(latency_ms, fraction)` like Figs. 8(c)/(d).
pub fn print_cdf(label: &str, cdf: &[(u64, f64)]) {
    println!("# {label}: latency_ms cdf");
    for (nanos, frac) in cdf {
        println!("{label} {:>10.3} {frac:>7.4}", *nanos as f64 / 1e6);
    }
}

/// Prints the per-hop latency table from the end-to-end tracer, closing
/// with the hop-sum vs independently measured e2e-mean cross-check (the
/// deltas telescope, so the two should agree to within bucket error).
pub fn print_hop_table(label: &str, tracer: &typhoon_trace::Tracer) {
    tracer.collect();
    let completed = tracer.completed();
    println!("# {label}: hop count mean_us p99_us ({completed} complete traces)");
    if completed == 0 {
        println!("{label} (no complete traces)");
        return;
    }
    let mut hop_sum = 0.0;
    for s in tracer.hop_stats() {
        hop_sum += s.mean_ns * s.count as f64 / completed as f64;
        println!(
            "{label} {:<14} {:>8} {:>10.1} {:>10.1}",
            s.hop.label(),
            s.count,
            s.mean_ns / 1e3,
            s.p99_ns as f64 / 1e3
        );
    }
    let e2e = tracer.e2e_mean_nanos();
    let dev = if e2e > 0.0 {
        (hop_sum - e2e).abs() / e2e * 100.0
    } else {
        0.0
    };
    println!(
        "{label} hop-sum {:.1} us vs e2e mean {:.1} us ({dev:.1}% apart)",
        hop_sum / 1e3,
        e2e / 1e3
    );
}

/// Geometric helper: ratio between two rates, guarding zero.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn measure_rate_tracks_counter_growth() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        let stop = Arc::new(AtomicU64::new(0));
        let s2 = stop.clone();
        let t = std::thread::spawn(move || {
            while s2.load(Ordering::Relaxed) == 0 {
                c2.fetch_add(10, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let rate = measure_rate(
            || counter.load(Ordering::Relaxed),
            Duration::from_millis(20),
            Duration::from_millis(200),
        );
        stop.store(1, Ordering::Relaxed);
        t.join().unwrap();
        assert!(rate > 1000.0, "rate {rate}");
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(4.0, 2.0), 2.0);
        assert!(ratio(1.0, 0.0).is_infinite());
    }
}
