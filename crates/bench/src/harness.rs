//! Measurement helpers shared by the experiment binaries.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use typhoon_metrics::RateMeter;

/// Command-line options every `exp_*` binary understands, parsed before
/// binary-specific arguments:
///
/// * `--json <path>` — after the paper-style stdout tables, also write the
///   figure's machine-readable [`crate::report::Report`] to `path`.
/// * `--short` — compressed timelines / reduced sweep for CI and baseline
///   generation; the emitted report records the mode so the gate never
///   compares short against full runs.
#[derive(Debug, Clone, Default)]
pub struct BenchOpts {
    /// Where to write the `BENCH_<figure>.json` report, if requested.
    pub json: Option<PathBuf>,
    /// Compressed short mode (CI matrix / baseline generation).
    pub short: bool,
    /// Remaining arguments, with the common flags stripped.
    pub rest: Vec<String>,
}

impl BenchOpts {
    /// Parses `--json <path>` and `--short` out of `args`, leaving the
    /// binary-specific remainder in `rest`.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut opts = BenchOpts::default();
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--json" => {
                    opts.json = args.next().map(PathBuf::from);
                    if opts.json.is_none() {
                        eprintln!("--json requires a path argument");
                        std::process::exit(2);
                    }
                }
                "--short" => opts.short = true,
                _ => opts.rest.push(arg),
            }
        }
        opts
    }

    /// Parses the process arguments (skipping the program name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Picks the full or short variant of a tunable.
    pub fn pick<T>(&self, full: T, short: T) -> T {
        if self.short {
            short
        } else {
            full
        }
    }

    /// `"short"` or `"full"`, as recorded in the report's `mode` field.
    pub fn mode(&self) -> &'static str {
        self.pick("full", "short")
    }

    /// Writes `report` to the `--json` path, if one was given, and prints
    /// where it went. Exits non-zero on I/O failure so CI notices.
    pub fn emit(&self, report: &crate::report::Report) {
        if let Some(path) = &self.json {
            if let Err(e) = report.write(path) {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("# wrote {}", path.display());
        }
    }
}

/// Waits `dur` while the workload runs.
pub fn run_for(dur: Duration) {
    std::thread::sleep(dur); // LINT: allow-sleep(bench harness: the wait IS the measurement window)
}

/// Measures the steady-state rate of a shared counter: samples `counter`
/// at start and end of `dur`, returns events/sec.
///
/// Robust against counters that move backwards mid-window (a task
/// re-registered after recovery resets its registry counter): the delta
/// saturates at zero instead of underflowing, and a degenerate measurement
/// window returns 0.0 instead of dividing by ~0.
pub fn measure_rate(counter: impl Fn() -> u64, warmup: Duration, dur: Duration) -> f64 {
    std::thread::sleep(warmup); // LINT: allow-sleep(bench harness: warmup window before sampling)
    let start_count = counter();
    let start = Instant::now();
    std::thread::sleep(dur); // LINT: allow-sleep(bench harness: the wait IS the measurement window)
    let elapsed = start.elapsed().as_secs_f64();
    if elapsed < 1e-6 {
        return 0.0;
    }
    counter().saturating_sub(start_count) as f64 / elapsed
}

/// Prints one paper-style throughput row.
pub fn print_rate_row(label: &str, tuples_per_sec: f64) {
    println!("{label:<40} {:>12.0} tuples/sec", tuples_per_sec);
}

/// The rates of windows `[from, to)` as a fixed-length vector, padding
/// trailing never-written windows with zeros — figure timelines and their
/// JSON series always have exactly `to - from` points.
pub fn timeline_points(meter: &RateMeter, from: usize, to: usize) -> Vec<f64> {
    let rates = meter.rates_per_sec();
    (from..to)
        .map(|t| rates.get(t).copied().unwrap_or(0.0))
        .collect()
}

/// The summed rates of several meters over windows `[0, seconds)`,
/// zero-padded to fixed length (aggregate sink throughput).
pub fn aggregate_timeline_points(meters: &[RateMeter], seconds: usize) -> Vec<f64> {
    let series: Vec<Vec<f64>> = meters.iter().map(|m| m.rates_per_sec()).collect();
    (0..seconds)
        .map(|t| {
            series
                .iter()
                .map(|s| s.get(t).copied().unwrap_or(0.0))
                .sum()
        })
        .collect()
}

/// Mean of the timeline points in windows `[from, to)` (0.0 when empty) —
/// steady-state summaries of a phase of an aggregate timeline.
pub fn window_mean(points: &[f64], from: usize, to: usize) -> f64 {
    let slice: Vec<f64> = points
        .iter()
        .skip(from)
        .take(to.saturating_sub(from))
        .copied()
        .collect();
    if slice.is_empty() {
        0.0
    } else {
        slice.iter().sum::<f64>() / slice.len() as f64
    }
}

/// Prints a per-second timeline from a meter (the Fig. 10–12/14 series).
/// Always prints exactly `to - from` rows: trailing windows the meter never
/// wrote are zeros, matching [`print_aggregate_timeline`].
pub fn print_timeline(label: &str, meter: &RateMeter, from: usize, to: usize) {
    println!("# {label}: time_sec tuples_per_sec");
    for (i, rate) in timeline_points(meter, from, to).iter().enumerate() {
        let t = from + i;
        println!("{label} {t:>4} {rate:>12.0}");
    }
}

/// Prints the sum-of-meters timeline (aggregate sink throughput).
pub fn print_aggregate_timeline(label: &str, meters: &[RateMeter], seconds: usize) {
    println!("# {label}: time_sec aggregate_tuples_per_sec");
    for (t, total) in aggregate_timeline_points(meters, seconds)
        .iter()
        .enumerate()
    {
        println!("{label} {t:>4} {total:>12.0}");
    }
}

/// Prints CDF points `(latency_ms, fraction)` like Figs. 8(c)/(d).
pub fn print_cdf(label: &str, cdf: &[(u64, f64)]) {
    println!("# {label}: latency_ms cdf");
    for (nanos, frac) in cdf {
        println!("{label} {:>10.3} {frac:>7.4}", *nanos as f64 / 1e6);
    }
}

/// Prints the per-hop latency table from the end-to-end tracer, closing
/// with the hop-sum vs independently measured e2e-mean cross-check (the
/// deltas telescope, so the two should agree to within bucket error).
pub fn print_hop_table(label: &str, tracer: &typhoon_trace::Tracer) {
    tracer.collect();
    let completed = tracer.completed();
    println!("# {label}: hop count mean_us p99_us ({completed} complete traces)");
    if completed == 0 {
        println!("{label} (no complete traces)");
        return;
    }
    let mut hop_sum = 0.0;
    for s in tracer.hop_stats() {
        hop_sum += s.mean_ns * s.count as f64 / completed as f64;
        println!(
            "{label} {:<14} {:>8} {:>10.1} {:>10.1}",
            s.hop.label(),
            s.count,
            s.mean_ns / 1e3,
            s.p99_ns as f64 / 1e3
        );
    }
    let e2e = tracer.e2e_mean_nanos();
    let dev = if e2e > 0.0 {
        (hop_sum - e2e).abs() / e2e * 100.0
    } else {
        0.0
    };
    println!(
        "{label} hop-sum {:.1} us vs e2e mean {:.1} us ({dev:.1}% apart)",
        hop_sum / 1e3,
        e2e / 1e3
    );
}

/// Approximate quantile from CDF points `(value, cumulative fraction)`:
/// the first value whose cumulative fraction reaches `q` (the last point
/// for q beyond the recorded range, `None` for an empty CDF).
pub fn quantile_from_cdf(cdf: &[(u64, f64)], q: f64) -> Option<u64> {
    cdf.iter()
        .find(|(_, frac)| *frac >= q)
        .or(cdf.last())
        .map(|(v, _)| *v)
}

/// Geometric helper: ratio between two rates, guarding zero.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    #[test]
    fn measure_rate_tracks_counter_growth() {
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        let stop = Arc::new(AtomicU64::new(0));
        let s2 = stop.clone();
        let t = std::thread::spawn(move || {
            while s2.load(Ordering::Relaxed) == 0 {
                c2.fetch_add(10, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let rate = measure_rate(
            || counter.load(Ordering::Relaxed),
            Duration::from_millis(20),
            Duration::from_millis(200),
        );
        stop.store(1, Ordering::Relaxed);
        t.join().unwrap();
        assert!(rate > 1000.0, "rate {rate}");
    }

    #[test]
    fn ratio_guards_zero() {
        assert_eq!(ratio(4.0, 2.0), 2.0);
        assert!(ratio(1.0, 0.0).is_infinite());
    }

    #[test]
    fn measure_rate_survives_counter_reset() {
        // A counter that moves backwards mid-window (task re-registered
        // after recovery resets its registry) must yield 0.0, not a
        // debug-build subtraction underflow panic.
        let values = Arc::new(Mutex::new(vec![2000u64, 100].into_iter()));
        let v2 = values.clone();
        let rate = measure_rate(
            move || v2.lock().unwrap().next().unwrap_or(0),
            Duration::ZERO,
            Duration::from_millis(10),
        );
        assert_eq!(rate, 0.0, "reset counter saturates to zero, got {rate}");
    }

    #[test]
    fn timeline_points_pad_trailing_windows() {
        let m = RateMeter::with_window(Duration::from_secs(1));
        // Mark only window 0; ask for [0, 5): rows 1..5 must exist as zeros.
        m.mark(50);
        let points = timeline_points(&m, 0, 5);
        assert_eq!(points.len(), 5, "fixed length [from, to)");
        assert!(points[0] > 0.0);
        assert_eq!(&points[1..], &[0.0; 4]);
        // A fully unwritten meter still yields the fixed shape.
        let empty = RateMeter::per_second();
        assert_eq!(timeline_points(&empty, 2, 6), vec![0.0; 4]);
    }

    #[test]
    fn window_mean_over_phase() {
        let points = [0.0, 10.0, 20.0, 30.0];
        assert_eq!(window_mean(&points, 1, 4), 20.0);
        assert_eq!(window_mean(&points, 4, 4), 0.0);
        assert_eq!(window_mean(&points, 2, 10), 25.0);
    }

    #[test]
    fn quantile_from_cdf_walks_fractions() {
        let cdf = [(10u64, 0.25), (20, 0.5), (40, 1.0)];
        assert_eq!(quantile_from_cdf(&cdf, 0.5), Some(20));
        assert_eq!(quantile_from_cdf(&cdf, 0.51), Some(40));
        assert_eq!(quantile_from_cdf(&cdf, 0.0), Some(10));
        assert_eq!(quantile_from_cdf(&cdf, 2.0), Some(40), "clamps to last");
        assert_eq!(quantile_from_cdf(&[], 0.5), None);
    }

    #[test]
    fn bench_opts_strip_common_flags() {
        let opts = BenchOpts::parse(
            ["a", "--json", "out.json", "--short", "b"]
                .into_iter()
                .map(String::from),
        );
        assert_eq!(opts.json.as_deref(), Some(std::path::Path::new("out.json")));
        assert!(opts.short);
        assert_eq!(opts.rest, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(opts.mode(), "short");
        assert_eq!(opts.pick(10, 2), 2);

        let none = BenchOpts::parse(std::iter::empty());
        assert!(none.json.is_none() && !none.short && none.rest.is_empty());
        assert_eq!(none.mode(), "full");
    }
}
