//! Shared workload components.
//!
//! The same spouts/bolts run unchanged on the Storm baseline and on
//! Typhoon — the comparisons vary only the framework underneath, exactly
//! as the paper's evaluation does (both systems ran the same topologies).

use parking_lot::Mutex;
use rand::distributions::Distribution;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use typhoon_model::{Bolt, ComponentRegistry, Emitter, Fields, Grouping, LogicalTopology, Spout};
use typhoon_tuple::{Tuple, Value};

/// A spout emitting monotonically numbered string tuples at maximum speed
/// ("a source worker injects a sequence of string tuples at maximum
/// speed", §6.1). Each tuple is `(seq, payload)` with a fixed-size string
/// payload. Failed roots are replayed (reliability experiments).
pub struct SeqSpout {
    next: i64,
    limit: i64,
    payload: String,
    batch: usize,
    replay: Vec<(i64, u64)>,
    inflight: HashMap<u64, i64>,
    last_batch: Vec<i64>,
    last_prev_roots: Vec<Option<u64>>,
}

impl SeqSpout {
    /// An endless sequence spout with `payload_len`-byte payloads.
    pub fn new(payload_len: usize, batch: usize) -> Self {
        SeqSpout {
            next: 0,
            limit: i64::MAX,
            payload: "x".repeat(payload_len),
            batch: batch.max(1),
            replay: Vec::new(),
            inflight: HashMap::new(),
            last_batch: Vec::new(),
            last_prev_roots: Vec::new(),
        }
    }

    /// A finite sequence spout.
    pub fn with_limit(mut self, limit: i64) -> Self {
        self.limit = limit;
        self
    }
}

impl Spout for SeqSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        self.last_batch.clear();
        self.last_prev_roots.clear();
        let mut emitted = false;
        for _ in 0..self.batch {
            let (seq, prev_root) = if let Some((seq, prev)) = self.replay.pop() {
                (seq, Some(prev))
            } else if self.next < self.limit {
                let s = self.next;
                self.next += 1;
                (s, None)
            } else {
                break;
            };
            out.emit(vec![Value::Int(seq), Value::Str(self.payload.clone())]);
            self.last_batch.push(seq);
            self.last_prev_roots.push(prev_root);
            emitted = true;
        }
        emitted
    }

    fn emitted(&mut self, index: usize, root: u64) {
        if let Some(&seq) = self.last_batch.get(index) {
            self.inflight.insert(root, seq);
        }
    }

    fn replay_root(&mut self, index: usize) -> Option<u64> {
        self.last_prev_roots.get(index).copied().flatten()
    }

    fn fail(&mut self, root: u64) {
        if let Some(seq) = self.inflight.remove(&root) {
            // Remember the failed attempt's root: the replay reuses its
            // base with a bumped round byte, keeping downstream dedup keys
            // stable across replays.
            self.replay.push((seq, root));
        }
    }

    fn ack(&mut self, root: u64) {
        self.inflight.remove(&root);
    }
}

/// A *deterministic, replayable* sentence source for the crash-recovery
/// experiments: sentence `i` is a pure function of `i` (and the seed), so
/// a fault run and a no-fault baseline emit the identical sentence stream
/// and their final word counts can be compared exactly. Failed roots are
/// replayed with the original root's base (bumped round byte), the link
/// that lets restored count bolts dedup already-folded replays.
pub struct ReplaySentenceSpout {
    next: i64,
    limit: i64,
    batch: usize,
    seed: u64,
    words_per_sentence: usize,
    replay: Vec<(i64, u64)>,
    inflight: HashMap<u64, i64>,
    last_batch: Vec<i64>,
    last_prev_roots: Vec<Option<u64>>,
}

impl ReplaySentenceSpout {
    /// A seeded deterministic sentence source emitting `limit` sentences.
    pub fn new(seed: u64, batch: usize, limit: i64) -> Self {
        ReplaySentenceSpout {
            next: 0,
            limit,
            batch: batch.max(1),
            seed,
            words_per_sentence: 6,
            replay: Vec::new(),
            inflight: HashMap::new(),
            last_batch: Vec::new(),
            last_prev_roots: Vec::new(),
        }
    }

    /// The sentence for sequence number `seq` — pure, so replays and
    /// baseline runs regenerate the exact same words.
    pub fn sentence(seed: u64, seq: i64, words_per_sentence: usize) -> String {
        let mut words = Vec::with_capacity(words_per_sentence);
        for pos in 0..words_per_sentence {
            // splitmix64 over (seed, seq, pos).
            let mut x = seed
                .wrapping_add((seq as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .wrapping_add((pos as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            words.push(WORDS[(x % WORDS.len() as u64) as usize]);
        }
        words.join(" ")
    }
}

impl Spout for ReplaySentenceSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        self.last_batch.clear();
        self.last_prev_roots.clear();
        let mut emitted = false;
        for _ in 0..self.batch {
            let (seq, prev_root) = if let Some((seq, prev)) = self.replay.pop() {
                (seq, Some(prev))
            } else if self.next < self.limit {
                let s = self.next;
                self.next += 1;
                (s, None)
            } else {
                break;
            };
            out.emit(vec![Value::Str(Self::sentence(
                self.seed,
                seq,
                self.words_per_sentence,
            ))]);
            self.last_batch.push(seq);
            self.last_prev_roots.push(prev_root);
            emitted = true;
        }
        emitted
    }

    fn emitted(&mut self, index: usize, root: u64) {
        if let Some(&seq) = self.last_batch.get(index) {
            self.inflight.insert(root, seq);
        }
    }

    fn replay_root(&mut self, index: usize) -> Option<u64> {
        self.last_prev_roots.get(index).copied().flatten()
    }

    fn fail(&mut self, root: u64) {
        if let Some(seq) = self.inflight.remove(&root) {
            self.replay.push((seq, root));
        }
    }

    fn ack(&mut self, root: u64) {
        self.inflight.remove(&root);
    }
}

/// Shared sink counter: counts received tuples and checks sequence gaps.
#[derive(Clone, Default)]
pub struct SinkCounter {
    /// Tuples received.
    pub received: Arc<AtomicU64>,
    /// Received seq smaller than one already seen (reordering indicator).
    pub out_of_order: Arc<AtomicU64>,
    max_seen: Arc<AtomicU64>,
}

impl SinkCounter {
    /// Fresh counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Received count.
    pub fn count(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }
}

/// A sink bolt that "checks the sequence numbers in the tuples" (§6.1).
pub struct SeqSinkBolt {
    /// Shared counters read by the harness.
    pub counter: SinkCounter,
}

impl Bolt for SeqSinkBolt {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        self.counter.received.fetch_add(1, Ordering::Relaxed);
        if let Some(seq) = input.get(0).and_then(Value::as_int) {
            let seq = seq.max(0) as u64;
            let prev = self.counter.max_seen.fetch_max(seq, Ordering::Relaxed);
            if seq < prev {
                self.counter.out_of_order.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// A pass-through bolt that re-emits its input (pipeline filler).
pub struct RelayBolt;

impl Bolt for RelayBolt {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        out.emit(input.values);
    }
}

// ------------------------------------------------------------ word count

/// Vocabulary for the sentence generator.
pub const WORDS: &[&str] = &[
    "the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog", "stream", "tuple", "switch",
    "route", "flow", "packet", "worker", "storm", "typhoon", "cloud", "data", "count",
];

/// A spout emitting random sentences; with `zipf = true` the word choice
/// is heavily skewed (the "skewed workloads" of §1's motivation).
pub struct SentenceSpout {
    rng: SmallRng,
    zipf: bool,
    batch: usize,
    words_per_sentence: usize,
}

impl SentenceSpout {
    /// A uniform-vocabulary sentence source.
    pub fn new(batch: usize) -> Self {
        SentenceSpout {
            rng: SmallRng::seed_from_u64(42),
            zipf: false,
            batch: batch.max(1),
            words_per_sentence: 6,
        }
    }

    /// Skews word frequency (Zipf-like, exponent ≈ 1.2).
    pub fn skewed(mut self) -> Self {
        self.zipf = true;
        self
    }

    fn pick_word(&mut self) -> &'static str {
        if self.zipf {
            // Inverse-CDF sample of a Zipf(1.2) over the vocabulary.
            let u: f64 = self.rng.gen_range(0.0001..1.0);
            let idx = ((1.0 / u).powf(1.0 / 1.2) - 1.0) as usize;
            WORDS[idx.min(WORDS.len() - 1)]
        } else {
            WORDS[self.rng.gen_range(0..WORDS.len())]
        }
    }
}

impl Spout for SentenceSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for _ in 0..self.batch {
            let sentence: Vec<&str> = (0..self.words_per_sentence)
                .map(|_| self.pick_word())
                .collect();
            out.emit(vec![Value::Str(sentence.join(" "))]);
        }
        true
    }
}

/// Splits sentences into words (the `split` node of Fig. 2).
pub struct SplitBolt;

impl Bolt for SplitBolt {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if let Some(sentence) = input.get(0).and_then(Value::as_str) {
            for word in sentence.split_whitespace() {
                out.emit(vec![Value::Str(word.to_owned())]);
            }
        }
    }
}

/// Counts words with an in-memory cache and key-based routing — the
/// canonical stateful worker (Table 4, Listing 2). Emits `(word, count)`
/// per input; flushes the whole cache on `SIGNAL`.
pub struct CountBolt {
    counts: HashMap<String, i64>,
}

impl CountBolt {
    /// An empty counter.
    pub fn new() -> Self {
        CountBolt {
            counts: HashMap::new(),
        }
    }
}

impl Default for CountBolt {
    fn default() -> Self {
        Self::new()
    }
}

impl Bolt for CountBolt {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if let Some(word) = input.get(0).and_then(Value::as_str) {
            let c = self.counts.entry(word.to_owned()).or_insert(0);
            *c += 1;
            out.emit(vec![Value::Str(word.to_owned()), Value::Int(*c)]);
        }
    }

    fn on_signal(&mut self, out: &mut dyn Emitter) {
        // Listing 2: flush the cache downstream.
        for (word, count) in self.counts.drain() {
            out.emit(vec![Value::Str(word), Value::Int(count)]);
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }

    fn checkpoint(&self) -> Option<Vec<(String, Value)>> {
        let mut state: Vec<(String, Value)> = self
            .counts
            .iter()
            .map(|(w, c)| (w.clone(), Value::Int(*c)))
            .collect();
        state.sort_by(|a, b| a.0.cmp(&b.0));
        Some(state)
    }

    fn restore(&mut self, state: Vec<(String, Value)>, out: &mut dyn Emitter) {
        self.counts.clear();
        for (word, v) in state {
            if let Some(c) = v.as_int() {
                self.counts.insert(word.clone(), c);
                // Re-emit restored counts (unanchored): the latest-wins
                // aggregator downstream re-converges even though the
                // pre-crash in-flight emissions died with the old worker.
                out.emit(vec![Value::Str(word), Value::Int(c)]);
            }
        }
    }
}

/// Terminal aggregation sink: tracks the latest count per word.
#[derive(Clone, Default)]
pub struct AggState {
    /// word → latest count.
    pub counts: Arc<Mutex<HashMap<String, i64>>>,
}

/// The `aggregator` sink node of Fig. 2.
pub struct AggregatorBolt {
    /// Shared state read by the harness.
    pub state: AggState,
}

impl Bolt for AggregatorBolt {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let (Some(word), Some(count)) = (
            input.get(0).and_then(Value::as_str),
            input.get(1).and_then(Value::as_int),
        ) {
            self.state.counts.lock().insert(word.to_owned(), count);
        }
    }
}

/// A sink that just counts (broadcast/forwarding benchmarks).
pub struct NullSinkBolt {
    /// Shared counter.
    pub counter: SinkCounter,
}

impl Bolt for NullSinkBolt {
    fn execute(&mut self, _input: Tuple, _out: &mut dyn Emitter) {
        self.counter.received.fetch_add(1, Ordering::Relaxed);
    }
}

// -------------------------------------------------------------- builders

/// Registers the standard components into a registry:
/// `seq-spout[-<len>]`, `sentence-spout`, `split`, `count`, `agg`,
/// `seq-sink`, `null-sink`, `relay`.
pub fn register_standard(
    reg: &mut ComponentRegistry,
    payload_len: usize,
    spout_batch: usize,
) -> (SinkCounter, AggState) {
    let sink = SinkCounter::new();
    let agg = AggState::default();
    reg.register_spout("seq-spout", move || SeqSpout::new(payload_len, spout_batch));
    reg.register_spout("sentence-spout", move || SentenceSpout::new(spout_batch));
    reg.register_spout("sentence-spout-skewed", move || {
        SentenceSpout::new(spout_batch).skewed()
    });
    reg.register_bolt("split", || SplitBolt);
    reg.register_bolt("count", CountBolt::new);
    let a = agg.clone();
    reg.register_bolt("agg", move || AggregatorBolt { state: a.clone() });
    let s = sink.clone();
    reg.register_bolt("seq-sink", move || SeqSinkBolt { counter: s.clone() });
    let s = sink.clone();
    reg.register_bolt("null-sink", move || NullSinkBolt { counter: s.clone() });
    reg.register_bolt("relay", || RelayBolt);
    (sink, agg)
}

/// The two-worker forwarding topology of §6.1 ("a simple topology
/// consisting of two workers").
pub fn forwarding_topology() -> LogicalTopology {
    LogicalTopology::builder("forwarding")
        .spout("source", "seq-spout", 1, Fields::new(["seq", "payload"]))
        .bolt("sink", "seq-sink", 1, Fields::new(["seq"]))
        .edge("source", "sink", Grouping::Global)
        .build()
        .expect("valid")
}

/// The one-to-many topology of §6.1 Fig. 9: one source broadcasting to
/// `sinks` sink workers.
pub fn broadcast_topology(sinks: usize) -> LogicalTopology {
    LogicalTopology::builder("broadcast")
        .spout("source", "seq-spout", 1, Fields::new(["seq", "payload"]))
        .bolt("sink", "null-sink", sinks, Fields::new(["seq"]))
        .edge("source", "sink", Grouping::All)
        .build()
        .expect("valid")
}

/// The exact word counts a run over `roots` sentences of seed `seed` must
/// converge to, recomputed from the pure sentence function — the ground
/// truth the crash-recovery tests and experiments compare against.
pub fn expected_word_counts(seed: u64, roots: i64) -> HashMap<String, i64> {
    let mut counts = HashMap::new();
    for seq in 0..roots {
        for word in ReplaySentenceSpout::sentence(seed, seq, 6).split_whitespace() {
            *counts.entry(word.to_owned()).or_insert(0) += 1;
        }
    }
    counts
}

/// Registers the deterministic replayable sentence source under
/// `replay-sentence-spout` (the crash-recovery workload's source).
pub fn register_replay_spout(reg: &mut ComponentRegistry, seed: u64, batch: usize, limit: i64) {
    reg.register_spout("replay-sentence-spout", move || {
        ReplaySentenceSpout::new(seed, batch, limit)
    });
}

/// The word-count topology wired to the deterministic replayable source —
/// the crash-recovery experiments' workload: identical seeds produce
/// identical word streams, so post-recovery counts can be compared
/// exactly against a no-fault baseline.
pub fn recovery_word_count_topology(splits: usize, counts: usize) -> LogicalTopology {
    LogicalTopology::builder("word-count-recovery")
        .spout(
            "input",
            "replay-sentence-spout",
            1,
            Fields::new(["sentence"]),
        )
        .bolt("split", "split", splits, Fields::new(["word"]))
        .bolt_with_state(
            "count",
            "count",
            counts,
            Fields::new(["word", "count"]),
            true,
        )
        .bolt("aggregator", "agg", 1, Fields::new(["word", "count"]))
        .edge("input", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["word".into()]))
        .edge("count", "aggregator", Grouping::Global)
        .build()
        .expect("valid")
}

/// The word-count topology of Fig. 2 / Fig. 10: 1 source, `splits` split
/// workers (shuffle), `counts` count workers (key-based).
pub fn word_count_topology(splits: usize, counts: usize) -> LogicalTopology {
    LogicalTopology::builder("word-count")
        .spout("input", "sentence-spout", 1, Fields::new(["sentence"]))
        .bolt("split", "split", splits, Fields::new(["word"]))
        .bolt_with_state(
            "count",
            "count",
            counts,
            Fields::new(["word", "count"]),
            true,
        )
        .edge("input", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["word".into()]))
        .build()
        .expect("valid")
}

/// A sampled distribution helper kept for workload extensions.
pub struct ZipfSampler {
    rng: SmallRng,
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// A Zipf(`s`) sampler over `n` items.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0);
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfSampler {
            rng: SmallRng::seed_from_u64(seed),
            cdf,
        }
    }

    /// Draws one item index in `0..n`.
    pub fn sample(&mut self) -> usize {
        let u: f64 = rand::distributions::Uniform::new(0.0, 1.0).sample(&mut self.rng);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_model::VecEmitter;
    use typhoon_tuple::tuple::TaskId;

    #[test]
    fn seq_spout_emits_in_order_and_respects_limit() {
        let mut s = SeqSpout::new(8, 4).with_limit(6);
        let mut out = VecEmitter::default();
        assert!(s.next_batch(&mut out));
        assert!(s.next_batch(&mut out));
        assert!(!s.next_batch(&mut out), "exhausted");
        assert_eq!(out.emitted.len(), 6);
        let seqs: Vec<i64> = out
            .emitted
            .iter()
            .map(|(_, v)| v[0].as_int().unwrap())
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn split_bolt_splits() {
        let mut b = SplitBolt;
        let mut out = VecEmitter::default();
        b.execute(
            Tuple::new(TaskId(0), vec![Value::Str("a b c".into())]),
            &mut out,
        );
        assert_eq!(out.emitted.len(), 3);
    }

    #[test]
    fn count_bolt_counts_and_flushes_on_signal() {
        let mut b = CountBolt::new();
        let mut out = VecEmitter::default();
        for w in ["x", "y", "x"] {
            b.execute(Tuple::new(TaskId(0), vec![Value::Str(w.into())]), &mut out);
        }
        assert!(b.is_stateful());
        let last = &out.emitted.last().unwrap().1;
        assert_eq!(last[0].as_str(), Some("x"));
        assert_eq!(last[1].as_int(), Some(2));
        out.emitted.clear();
        b.on_signal(&mut out);
        assert_eq!(out.emitted.len(), 2, "cache flushed");
        b.on_signal(&mut out);
        assert_eq!(out.emitted.len(), 2, "cache drained after flush");
    }

    #[test]
    fn seq_spout_replays_with_the_original_root() {
        let mut s = SeqSpout::new(4, 1).with_limit(10);
        let mut out = VecEmitter::default();
        assert!(s.next_batch(&mut out));
        assert_eq!(s.replay_root(0), None, "fresh emission, fresh root");
        s.emitted(0, 0x7700);
        s.fail(0x7700);
        assert!(s.next_batch(&mut out));
        let replayed = out.emitted.last().unwrap().1[0].as_int().unwrap();
        assert_eq!(replayed, 0, "failed seq is replayed");
        assert_eq!(
            s.replay_root(0),
            Some(0x7700),
            "replay carries the failed attempt's root"
        );
    }

    #[test]
    fn replay_sentence_spout_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut s = ReplaySentenceSpout::new(seed, 4, 8);
            let mut out = VecEmitter::default();
            while s.next_batch(&mut out) {}
            out.emitted
                .iter()
                .map(|(_, v)| v[0].as_str().unwrap().to_owned())
                .collect::<Vec<_>>()
        };
        let a = run(0xc4a0);
        assert_eq!(a.len(), 8);
        assert_eq!(a, run(0xc4a0), "same seed, same sentences");
        assert_ne!(a, run(0xc4a1), "different seed, different sentences");
        assert_eq!(
            ReplaySentenceSpout::sentence(0xc4a0, 3, 6),
            a[3],
            "sentence(seq) is pure"
        );
    }

    #[test]
    fn count_bolt_checkpoint_restore_roundtrips_and_reemits() {
        let mut b = CountBolt::new();
        let mut out = VecEmitter::default();
        for w in ["x", "y", "x"] {
            b.execute(Tuple::new(TaskId(0), vec![Value::Str(w.into())]), &mut out);
        }
        let snap = b.checkpoint().expect("stateful bolt snapshots");
        let mut fresh = CountBolt::new();
        out.emitted.clear();
        fresh.restore(snap, &mut out);
        assert_eq!(out.emitted.len(), 2, "restored entries re-emitted");
        out.emitted.clear();
        fresh.execute(
            Tuple::new(TaskId(0), vec![Value::Str("x".into())]),
            &mut out,
        );
        let last = &out.emitted.last().unwrap().1;
        assert_eq!(last[1].as_int(), Some(3), "counting resumes from snapshot");
    }

    #[test]
    fn seq_sink_detects_out_of_order() {
        let counter = SinkCounter::new();
        let mut sink = SeqSinkBolt {
            counter: counter.clone(),
        };
        let mut out = VecEmitter::default();
        for seq in [0i64, 1, 2, 1, 3] {
            sink.execute(Tuple::new(TaskId(0), vec![Value::Int(seq)]), &mut out);
        }
        assert_eq!(counter.count(), 5);
        assert_eq!(counter.out_of_order.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn topologies_validate() {
        forwarding_topology().validate().unwrap();
        broadcast_topology(6).validate().unwrap();
        word_count_topology(2, 4).validate().unwrap();
        recovery_word_count_topology(2, 2).validate().unwrap();
    }

    #[test]
    fn zipf_sampler_is_head_heavy() {
        let mut z = ZipfSampler::new(100, 1.2, 7);
        let mut head = 0;
        for _ in 0..1000 {
            if z.sample() < 10 {
                head += 1;
            }
        }
        assert!(head > 500, "head got {head}/1000");
    }

    #[test]
    fn skewed_sentences_prefer_early_words() {
        let mut s = SentenceSpout::new(1).skewed();
        let mut first_word_hits = 0;
        for _ in 0..500 {
            if s.pick_word() == WORDS[0] {
                first_word_hits += 1;
            }
        }
        assert!(first_word_hits > 100, "got {first_word_hits}");
    }
}
