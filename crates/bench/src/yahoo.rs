//! The Yahoo advertisement-analytics benchmark (Fig. 13).
//!
//! "Simulating an advertisement analytics pipeline, the benchmark
//! application performs six distinct computations in its pipeline, with
//! Kafka as an input source and Redis as a database for join and
//! aggregation workers": kafka-client(1) → parse(1) → filter(3) →
//! projection(3) → join(3) → aggregation&store(1).
//!
//! Events are `ad_id|event_type|event_time_ms` strings; `typhoon-kv` holds
//! the ad→campaign mapping (join) and the per-campaign 10-second window
//! counts (aggregation), matching the original benchmark's Redis usage.

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use typhoon_kv::KvStore;
use typhoon_model::{Bolt, ComponentRegistry, Emitter, Fields, Grouping, LogicalTopology, Spout};
use typhoon_mq::MessageQueue;
use typhoon_tuple::{Tuple, Value};

/// The three ad event types the benchmark generates.
pub const EVENT_TYPES: &[&str] = &["view", "click", "purchase"];

/// The aggregation window (the benchmark's 10-second tuple window).
pub const WINDOW_MS: u64 = 10_000;

/// Populates the broker with `n` events across `ads` ads and seeds the
/// ad→campaign mapping (`campaigns` campaigns) into the store.
pub fn generate_events(
    mq: &MessageQueue,
    kv: &KvStore,
    topic: &str,
    ads: usize,
    campaigns: usize,
    n: usize,
    seed: u64,
) {
    mq.create_topic(topic, 1);
    for ad in 0..ads {
        kv.set(&format!("ad:{ad}"), &format!("campaign:{}", ad % campaigns));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..n {
        let ad = rng.gen_range(0..ads);
        let event = EVENT_TYPES[rng.gen_range(0..EVENT_TYPES.len())];
        let time_ms = (i as u64) * 2; // 2ms apart: ~5k events/sec of data time
        let line = format!("{ad}|{event}|{time_ms}");
        mq.produce(topic, None, Bytes::from(line))
            .expect("seed topic exists");
    }
}

/// The Kafka-client spout: polls the broker as consumer group `typhoon`.
pub struct KafkaClientSpout {
    mq: Arc<MessageQueue>,
    topic: String,
    batch: usize,
}

impl KafkaClientSpout {
    /// A spout over one topic (partition 0; the benchmark uses one client).
    pub fn new(mq: Arc<MessageQueue>, topic: &str, batch: usize) -> Self {
        KafkaClientSpout {
            mq,
            topic: topic.to_owned(),
            batch: batch.max(1),
        }
    }
}

impl Spout for KafkaClientSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        let records = match self.mq.poll("typhoon", &self.topic, 0, self.batch) {
            Ok(r) => r,
            Err(_) => return false,
        };
        let got = !records.is_empty();
        for r in records {
            out.emit(vec![Value::Blob(r.to_vec())]);
        }
        got
    }
}

/// Parses raw event lines into `(ad_id, event_type, event_time)`.
pub struct ParseBolt;

impl Bolt for ParseBolt {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        let raw = match input.get(0).and_then(Value::as_blob) {
            Some(b) => b,
            None => return,
        };
        let line = match std::str::from_utf8(raw) {
            Ok(s) => s,
            Err(_) => return,
        };
        let mut parts = line.split('|');
        if let (Some(ad), Some(event), Some(time)) = (parts.next(), parts.next(), parts.next()) {
            if let Ok(time_ms) = time.parse::<i64>() {
                out.emit(vec![
                    Value::Str(ad.to_owned()),
                    Value::Str(event.to_owned()),
                    Value::Int(time_ms),
                ]);
            }
        }
    }
}

/// Event-type filter. `v1` passes only `view` events (the initial
/// deployment of §6.2); `v2` passes `view` **and** `click` — the logic
/// swapped in at runtime for Fig. 14.
pub struct FilterBolt {
    allowed: Vec<&'static str>,
}

impl FilterBolt {
    /// The initial filter: views only.
    pub fn v1() -> Self {
        FilterBolt {
            allowed: vec!["view"],
        }
    }

    /// The replacement filter: views and clicks.
    pub fn v2() -> Self {
        FilterBolt {
            allowed: vec!["view", "click"],
        }
    }
}

impl Bolt for FilterBolt {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if let Some(event) = input.get(1).and_then(Value::as_str) {
            if self.allowed.contains(&event) {
                out.emit(input.values);
            }
        }
    }
}

/// Projects `(ad_id, event_type, event_time)` down to `(ad_id,
/// event_time)`.
pub struct ProjectionBolt;

impl Bolt for ProjectionBolt {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if let (Some(ad), Some(time)) = (
            input.get(0).and_then(Value::as_str),
            input.get(2).and_then(Value::as_int),
        ) {
            out.emit(vec![Value::Str(ad.to_owned()), Value::Int(time)]);
        }
    }
}

/// Joins ad IDs to campaign IDs through the store (stateful per Table 4:
/// it caches lookups in memory).
pub struct JoinBolt {
    kv: Arc<KvStore>,
    cache: std::collections::HashMap<String, String>,
}

impl JoinBolt {
    /// A join bolt over the shared store.
    pub fn new(kv: Arc<KvStore>) -> Self {
        JoinBolt {
            kv,
            cache: std::collections::HashMap::new(),
        }
    }
}

impl Bolt for JoinBolt {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        let (ad, time) = match (
            input.get(0).and_then(Value::as_str),
            input.get(1).and_then(Value::as_int),
        ) {
            (Some(a), Some(t)) => (a.to_owned(), t),
            _ => return,
        };
        let campaign = match self.cache.get(&ad) {
            Some(c) => c.clone(),
            None => match self.kv.get(&format!("ad:{ad}")) {
                Some(c) => {
                    self.cache.insert(ad.clone(), c.clone());
                    c
                }
                None => return, // unknown ad: drop (benchmark semantics)
            },
        };
        out.emit(vec![Value::Str(campaign), Value::Int(time)]);
    }

    fn on_signal(&mut self, _out: &mut dyn Emitter) {
        self.cache.clear();
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

/// Aggregates per-campaign counts into 10-second windows and stores them
/// (the "aggregation & store" sink of Fig. 13). Emits `(campaign, window,
/// count)` so downstream meters can plot Fig. 14's windowed-count series.
pub struct AggStoreBolt {
    kv: Arc<KvStore>,
}

impl AggStoreBolt {
    /// An aggregator over the shared store.
    pub fn new(kv: Arc<KvStore>) -> Self {
        AggStoreBolt { kv }
    }
}

impl Bolt for AggStoreBolt {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if let (Some(campaign), Some(time)) = (
            input.get(0).and_then(Value::as_str),
            input.get(1).and_then(Value::as_int),
        ) {
            let window = (time.max(0) as u64) / WINDOW_MS;
            let count = self.kv.wincr(campaign, window, 1);
            out.emit(vec![
                Value::Str(campaign.to_owned()),
                Value::Int(window as i64),
                Value::Int(count),
            ]);
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

/// Registers the Yahoo components (`kafka-client`, `parse`, `filter-v1`,
/// `filter-v2`, `projection`, `join`, `agg-store`).
pub fn register_yahoo(
    reg: &mut ComponentRegistry,
    mq: Arc<MessageQueue>,
    kv: Arc<KvStore>,
    topic: &str,
    spout_batch: usize,
) {
    let topic = topic.to_owned();
    let mq2 = mq.clone();
    reg.register_spout("kafka-client", move || {
        KafkaClientSpout::new(mq2.clone(), &topic, spout_batch)
    });
    reg.register_bolt("parse", || ParseBolt);
    reg.register_bolt("filter-v1", FilterBolt::v1);
    reg.register_bolt("filter-v2", FilterBolt::v2);
    reg.register_bolt("projection", || ProjectionBolt);
    let kv2 = kv.clone();
    reg.register_bolt("join", move || JoinBolt::new(kv2.clone()));
    let kv3 = kv;
    reg.register_bolt("agg-store", move || AggStoreBolt::new(kv3.clone()));
}

/// The Fig. 13 topology: kafka-client(1) → parse(1) → filter(3) →
/// projection(3) → join(3) → aggregation&store(1).
pub fn yahoo_topology() -> LogicalTopology {
    LogicalTopology::builder("yahoo-ads")
        .spout("kafka-client", "kafka-client", 1, Fields::new(["raw"]))
        .bolt("parse", "parse", 1, Fields::new(["ad", "event", "time"]))
        .bolt(
            "filter",
            "filter-v1",
            3,
            Fields::new(["ad", "event", "time"]),
        )
        .bolt("projection", "projection", 3, Fields::new(["ad", "time"]))
        .bolt_with_state("join", "join", 3, Fields::new(["campaign", "time"]), true)
        .bolt_with_state(
            "store",
            "agg-store",
            1,
            Fields::new(["campaign", "window", "count"]),
            true,
        )
        .edge("kafka-client", "parse", Grouping::Shuffle)
        .edge("parse", "filter", Grouping::Shuffle)
        .edge("filter", "projection", Grouping::Shuffle)
        .edge("projection", "join", Grouping::Fields(vec!["ad".into()]))
        .edge("join", "store", Grouping::Global)
        .build()
        .expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use typhoon_model::VecEmitter;
    use typhoon_tuple::tuple::TaskId;

    fn event_tuple(ad: &str, event: &str, time: i64) -> Tuple {
        Tuple::new(
            TaskId(0),
            vec![
                Value::Str(ad.into()),
                Value::Str(event.into()),
                Value::Int(time),
            ],
        )
    }

    #[test]
    fn parse_extracts_fields() {
        let mut b = ParseBolt;
        let mut out = VecEmitter::default();
        b.execute(
            Tuple::new(TaskId(0), vec![Value::Blob(b"17|click|12345".to_vec())]),
            &mut out,
        );
        assert_eq!(out.emitted.len(), 1);
        assert_eq!(out.emitted[0].1[0].as_str(), Some("17"));
        assert_eq!(out.emitted[0].1[1].as_str(), Some("click"));
        assert_eq!(out.emitted[0].1[2].as_int(), Some(12345));
        // Malformed lines drop silently.
        b.execute(
            Tuple::new(TaskId(0), vec![Value::Blob(b"garbage".to_vec())]),
            &mut out,
        );
        assert_eq!(out.emitted.len(), 1);
    }

    #[test]
    fn filter_v1_vs_v2() {
        let mut v1 = FilterBolt::v1();
        let mut v2 = FilterBolt::v2();
        for (bolt, expected) in [(&mut v1, 1usize), (&mut v2, 2usize)] {
            let mut out = VecEmitter::default();
            for e in ["view", "click", "purchase"] {
                bolt.execute(event_tuple("1", e, 0), &mut out);
            }
            assert_eq!(out.emitted.len(), expected);
        }
    }

    #[test]
    fn join_resolves_and_caches() {
        let kv = Arc::new(KvStore::new());
        kv.set("ad:5", "campaign:2");
        let mut b = JoinBolt::new(kv.clone());
        let mut out = VecEmitter::default();
        let projected = Tuple::new(TaskId(0), vec![Value::Str("5".into()), Value::Int(100)]);
        b.execute(projected.clone(), &mut out);
        kv.del("ad:5"); // cache must now serve the lookup
        b.execute(projected, &mut out);
        assert_eq!(out.emitted.len(), 2);
        assert_eq!(out.emitted[1].1[0].as_str(), Some("campaign:2"));
        // Unknown ads drop.
        b.execute(
            Tuple::new(TaskId(0), vec![Value::Str("404".into()), Value::Int(1)]),
            &mut out,
        );
        assert_eq!(out.emitted.len(), 2);
    }

    #[test]
    fn agg_store_windows_counts() {
        let kv = Arc::new(KvStore::new());
        let mut b = AggStoreBolt::new(kv.clone());
        let mut out = VecEmitter::default();
        for t in [0i64, 5_000, 12_000] {
            b.execute(
                Tuple::new(TaskId(0), vec![Value::Str("c1".into()), Value::Int(t)]),
                &mut out,
            );
        }
        assert_eq!(kv.wget("c1", 0), 2, "0ms and 5000ms share window 0");
        assert_eq!(kv.wget("c1", 1), 1);
    }

    #[test]
    fn generated_events_flow_through_the_whole_chain() {
        let mq = Arc::new(MessageQueue::new());
        let kv = Arc::new(KvStore::new());
        generate_events(&mq, &kv, "ads", 10, 3, 200, 1);
        let mut spout = KafkaClientSpout::new(mq, "ads", 64);
        let mut parse = ParseBolt;
        let mut filter = FilterBolt::v1();
        let mut proj = ProjectionBolt;
        let mut join = JoinBolt::new(kv.clone());
        let mut agg = AggStoreBolt::new(kv.clone());
        let mut drained = 0;
        loop {
            let mut raw = VecEmitter::default();
            if !spout.next_batch(&mut raw) {
                break;
            }
            for (_, values) in raw.emitted {
                drained += 1;
                let mut parsed = VecEmitter::default();
                parse.execute(Tuple::new(TaskId(0), values), &mut parsed);
                for (_, values) in parsed.emitted {
                    let mut filtered = VecEmitter::default();
                    filter.execute(Tuple::new(TaskId(1), values), &mut filtered);
                    for (_, values) in filtered.emitted {
                        let mut projected = VecEmitter::default();
                        proj.execute(Tuple::new(TaskId(2), values), &mut projected);
                        for (_, values) in projected.emitted {
                            let mut joined = VecEmitter::default();
                            join.execute(Tuple::new(TaskId(3), values), &mut joined);
                            for (_, values) in joined.emitted {
                                let mut stored = VecEmitter::default();
                                agg.execute(Tuple::new(TaskId(4), values), &mut stored);
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(drained, 200);
        // Roughly a third of events are views; all land in window 0
        // (200 events × 2ms < 10s).
        let total: i64 = (0..3).map(|c| kv.wget(&format!("campaign:{c}"), 0)).sum();
        assert!(total > 30 && total < 120, "views stored: {total}");
    }

    #[test]
    fn yahoo_topology_validates() {
        yahoo_topology().validate().unwrap();
        assert_eq!(yahoo_topology().total_tasks(), 12);
    }
}
