//! The bench regression gate — compares a fresh `BENCH_*.json` matrix
//! against the committed baselines, direction-aware.
//!
//! Rules, per metric present in the baseline:
//!
//! * higher-is-better: **fail** when
//!   `fresh < base * (1 - min(0.95, tolerance * slack))` — throughput may
//!   not drop beyond tolerance; growth never fails.
//! * lower-is-better: **fail** when
//!   `fresh > base * (1 + tolerance * slack)` — latency / recovery phases
//!   may not grow beyond tolerance; shrinkage never fails.
//! * a metric missing from the fresh run fails; a metric only in the
//!   fresh run is reported as `new` and passes (adopt it via `--bless`);
//!   NaN on either side fails.
//! * mode (`short` vs `full`) and figure id must match; schema version is
//!   already enforced by [`Report::from_json`].
//!
//! `slack` is a global multiplier on every per-metric tolerance: CI runs
//! on shared machines use `--slack` > 1 to absorb cross-machine variance
//! while keeping the committed per-metric tolerances tight for local runs.
//! `tolerance * slack` is clamped to 0.95 for higher-is-better metrics so
//! a huge slack never lets a metric drop to ~zero unnoticed; tolerance 0
//! metrics (exactness flags, serializations/tuple) ignore slack entirely
//! and must not regress at all.

use crate::report::{bench_file_name, Direction, Report};
use std::path::Path;

/// The nine figures of the short-mode matrix, in run order.
pub const FIGURES: [&str; 9] = [
    "fig8", "fig9", "fig10", "fig11", "fig12", "fig14", "ablation", "chaos", "recovery",
];

/// Comparison outcome for one metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Metric name (shared by baseline and fresh run).
    pub name: String,
    /// Unit label from the baseline.
    pub unit: String,
    /// Baseline value.
    pub base: f64,
    /// Fresh value (`None` when missing from the fresh run).
    pub fresh: Option<f64>,
    /// Which way is better.
    pub direction: Direction,
    /// Effective relative tolerance after slack (already clamped).
    pub allowed: f64,
    /// Relative change `(fresh - base) / base` (0.0 when incomputable).
    pub change: f64,
    /// Whether this metric passes the gate.
    pub pass: bool,
    /// Short annotation for the table (`""`, `"missing"`, `"nan"`, …).
    pub note: &'static str,
}

/// Comparison outcome for one figure (one `BENCH_*.json` pair).
#[derive(Debug, Clone)]
pub struct FigureOutcome {
    /// Figure id.
    pub figure: String,
    /// Whether every check on this figure passed.
    pub pass: bool,
    /// File-level problems (missing file, mode mismatch, parse error…).
    pub problems: Vec<String>,
    /// Per-metric deltas (empty when a file-level problem prevented
    /// comparison).
    pub deltas: Vec<MetricDelta>,
}

/// Whole-gate outcome across all requested figures.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Per-figure outcomes, in requested order.
    pub figures: Vec<FigureOutcome>,
}

impl GateOutcome {
    /// Whether every figure passed.
    pub fn pass(&self) -> bool {
        self.figures.iter().all(|f| f.pass)
    }
}

/// Effective tolerance after slack, clamped per direction (see module
/// docs). Tolerance 0 stays 0: no amount of slack excuses an exactness
/// regression.
fn effective_tolerance(tolerance: f64, slack: f64, direction: Direction) -> f64 {
    let eff = tolerance * slack.max(0.0);
    match direction {
        Direction::HigherIsBetter => eff.min(0.95),
        Direction::LowerIsBetter => eff,
    }
}

/// Compares one metric value pair under the gate rules.
fn metric_passes(base: f64, fresh: f64, direction: Direction, allowed: f64) -> bool {
    if base.is_nan() || fresh.is_nan() {
        return false;
    }
    match direction {
        Direction::HigherIsBetter => {
            if base <= 0.0 {
                // No meaningful relative floor below zero baseline.
                fresh >= base - 1e-12
            } else {
                fresh >= base * (1.0 - allowed) - 1e-12
            }
        }
        Direction::LowerIsBetter => {
            if base <= 0.0 {
                // A zero baseline cannot scale a relative ceiling; treat
                // as informational (emitters keep gated metrics nonzero).
                true
            } else {
                fresh <= base * (1.0 + allowed) + 1e-12
            }
        }
    }
}

/// Compares a fresh report against its baseline.
pub fn compare(base: &Report, fresh: &Report, slack: f64) -> FigureOutcome {
    let mut out = FigureOutcome {
        figure: base.figure.clone(),
        pass: true,
        problems: Vec::new(),
        deltas: Vec::new(),
    };
    if base.figure != fresh.figure {
        out.problems.push(format!(
            "figure mismatch: baseline {:?} vs fresh {:?}",
            base.figure, fresh.figure
        ));
    }
    if base.mode != fresh.mode {
        out.problems.push(format!(
            "mode mismatch: baseline {:?} vs fresh {:?} — regenerate with the same mode",
            base.mode, fresh.mode
        ));
    }
    if !out.problems.is_empty() {
        out.pass = false;
        return out;
    }
    for m in &base.metrics {
        let allowed = effective_tolerance(m.tolerance, slack, m.direction);
        match fresh.find(&m.name) {
            None => out.deltas.push(MetricDelta {
                name: m.name.clone(),
                unit: m.unit.clone(),
                base: m.value,
                fresh: None,
                direction: m.direction,
                allowed,
                change: 0.0,
                pass: false,
                note: "missing",
            }),
            Some(f) => {
                let pass = metric_passes(m.value, f.value, m.direction, allowed);
                let change = if m.value != 0.0 && m.value.is_finite() && f.value.is_finite() {
                    (f.value - m.value) / m.value
                } else {
                    0.0
                };
                out.deltas.push(MetricDelta {
                    name: m.name.clone(),
                    unit: m.unit.clone(),
                    base: m.value,
                    fresh: Some(f.value),
                    direction: m.direction,
                    allowed,
                    change,
                    pass,
                    note: if m.value.is_nan() || f.value.is_nan() {
                        "nan"
                    } else {
                        ""
                    },
                });
            }
        }
    }
    for f in &fresh.metrics {
        if base.find(&f.name).is_none() {
            out.deltas.push(MetricDelta {
                name: f.name.clone(),
                unit: f.unit.clone(),
                base: f64::NAN,
                fresh: Some(f.value),
                direction: f.direction,
                allowed: 0.0,
                change: 0.0,
                pass: true,
                note: "new",
            });
        }
    }
    out.pass = out.deltas.iter().all(|d| d.pass);
    out
}

/// Runs the gate over `figures`: reads `BENCH_<figure>.json` from both
/// directories and compares each pair.
pub fn run(baseline_dir: &Path, fresh_dir: &Path, figures: &[String], slack: f64) -> GateOutcome {
    let mut out = GateOutcome {
        figures: Vec::new(),
    };
    for figure in figures {
        let name = bench_file_name(figure);
        let base_path = baseline_dir.join(&name);
        let fresh_path = fresh_dir.join(&name);
        let mut fo = FigureOutcome {
            figure: figure.clone(),
            pass: true,
            problems: Vec::new(),
            deltas: Vec::new(),
        };
        match (Report::read(&base_path), Report::read(&fresh_path)) {
            (Err(e), _) if !base_path.exists() => {
                fo.pass = false;
                fo.problems.push(format!(
                    "no committed baseline ({e}); generate one and re-run with --bless"
                ));
            }
            (Err(e), _) => {
                fo.pass = false;
                fo.problems.push(format!("baseline unreadable: {e}"));
            }
            (Ok(_), Err(e)) => {
                fo.pass = false;
                fo.problems.push(format!("fresh run unreadable: {e}"));
            }
            (Ok(base), Ok(fresh)) => {
                fo = compare(&base, &fresh, slack);
                fo.figure = figure.clone();
            }
        }
        out.figures.push(fo);
    }
    out
}

/// Copies the fresh `BENCH_<figure>.json` files over the baselines,
/// validating each parses first. Returns the refreshed file names.
pub fn bless(
    baseline_dir: &Path,
    fresh_dir: &Path,
    figures: &[String],
) -> Result<Vec<String>, String> {
    let mut refreshed = Vec::new();
    for figure in figures {
        let name = bench_file_name(figure);
        let fresh_path = fresh_dir.join(&name);
        if !fresh_path.exists() {
            continue; // bless what ran; a partial matrix blesses partially
        }
        let report = Report::read(&fresh_path)?;
        report
            .write(&baseline_dir.join(&name))
            .map_err(|e| format!("{}: {e}", baseline_dir.join(&name).display()))?;
        refreshed.push(name);
    }
    if refreshed.is_empty() {
        return Err(format!(
            "nothing to bless: no BENCH_*.json in {}",
            fresh_dir.display()
        ));
    }
    Ok(refreshed)
}

/// Renders the human-readable delta table (also what CI prints into the
/// job summary on failure).
pub fn render_table(outcome: &GateOutcome, slack: f64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-gate: direction-aware comparison (slack ×{slack})"
    );
    for fo in &outcome.figures {
        let verdict = if fo.pass { "PASS" } else { "FAIL" };
        let _ = writeln!(out, "\n== {} [{verdict}] ==", fo.figure);
        for p in &fo.problems {
            let _ = writeln!(out, "  ! {p}");
        }
        if fo.deltas.is_empty() {
            continue;
        }
        let _ = writeln!(
            out,
            "  {:<44} {:>14} {:>14} {:>8} {:>9}  verdict",
            "metric", "baseline", "fresh", "delta", "allowed"
        );
        for d in &fo.deltas {
            let fresh = d
                .fresh
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".to_string());
            let arrow = match d.direction {
                Direction::HigherIsBetter => "↑",
                Direction::LowerIsBetter => "↓",
            };
            let allowed = match d.direction {
                Direction::HigherIsBetter => format!("-{:.0}%", d.allowed * 100.0),
                Direction::LowerIsBetter => format!("+{:.0}%", d.allowed * 100.0),
            };
            let verdict = if d.pass { "ok" } else { "FAIL" };
            let note = if d.note.is_empty() {
                String::new()
            } else {
                format!(" ({})", d.note)
            };
            let _ = writeln!(
                out,
                "  {:<44} {:>14.3} {:>14} {:>7.1}% {:>8}{arrow}  {verdict}{note}",
                d.name,
                d.base,
                fresh,
                d.change * 100.0,
                allowed,
            );
        }
    }
    let _ = writeln!(
        out,
        "\nbench-gate overall: {}",
        if outcome.pass() { "PASS" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::THROUGHPUT_TOL;

    fn base_report() -> Report {
        let mut r = Report::new("fig9", "t", "short");
        r.throughput("tput", 100_000.0); // tol 0.5, higher
        r.time_ms("lat_ms", 10.0, 1.0); // tol 1.0, lower
        r.exact("exact", 1.0, "bool"); // tol 0, higher
        r
    }

    fn fresh_like(tput: f64, lat: f64, exact: f64) -> Report {
        let mut r = Report::new("fig9", "t", "short");
        r.throughput("tput", tput);
        r.time_ms("lat_ms", lat, 1.0);
        r.exact("exact", exact, "bool");
        r
    }

    #[test]
    fn identical_reports_pass() {
        let b = base_report();
        let o = compare(&b, &b.clone(), 1.0);
        assert!(o.pass, "{:?}", o);
        assert_eq!(o.deltas.len(), 3);
    }

    #[test]
    fn throughput_drop_beyond_tolerance_fails() {
        let b = base_report();
        // tol 0.5: 49k < 100k * 0.5 → fail; 51k passes.
        let o = compare(&b, &fresh_like(49_000.0, 10.0, 1.0), 1.0);
        assert!(!o.pass);
        assert!(!o.deltas.iter().find(|d| d.name == "tput").unwrap().pass);
        let o = compare(&b, &fresh_like(51_000.0, 10.0, 1.0), 1.0);
        assert!(o.pass, "within tolerance");
        // Throughput growth never fails.
        let o = compare(&b, &fresh_like(1e9, 10.0, 1.0), 1.0);
        assert!(o.pass);
    }

    #[test]
    fn latency_growth_beyond_tolerance_fails() {
        let b = base_report();
        // tol 1.0: 21ms > 10ms * 2 → fail; 19ms passes; shrink passes.
        assert!(!compare(&b, &fresh_like(100_000.0, 21.0, 1.0), 1.0).pass);
        assert!(compare(&b, &fresh_like(100_000.0, 19.0, 1.0), 1.0).pass);
        assert!(compare(&b, &fresh_like(100_000.0, 0.1, 1.0), 1.0).pass);
    }

    #[test]
    fn exactness_ignores_slack() {
        let b = base_report();
        let fresh = fresh_like(100_000.0, 10.0, 0.0);
        for slack in [1.0, 10.0, 1000.0] {
            let o = compare(&b, &fresh, slack);
            assert!(
                !o.deltas.iter().find(|d| d.name == "exact").unwrap().pass,
                "tolerance-0 exactness metric must fail at slack {slack}"
            );
        }
    }

    #[test]
    fn slack_scales_tolerance_with_clamp() {
        assert_eq!(
            effective_tolerance(THROUGHPUT_TOL, 1.0, Direction::HigherIsBetter),
            0.5
        );
        // 0.5 * 4 clamps at 0.95: even huge slack keeps a floor above zero.
        assert_eq!(
            effective_tolerance(THROUGHPUT_TOL, 4.0, Direction::HigherIsBetter),
            0.95
        );
        let b = base_report();
        // A 92% drop fails at slack 1.8 (floor 10%), passes at slack 4
        // (clamped floor 5%); a 96% drop fails at any slack.
        assert!(!compare(&b, &fresh_like(8_000.0, 10.0, 1.0), 1.8).pass);
        assert!(compare(&b, &fresh_like(8_000.0, 10.0, 1.0), 4.0).pass);
        assert!(!compare(&b, &fresh_like(4_000.0, 10.0, 1.0), 1e6).pass);
    }

    #[test]
    fn missing_and_new_metrics() {
        let b = base_report();
        let mut fresh = Report::new("fig9", "t", "short");
        fresh.throughput("tput", 100_000.0);
        fresh.time_ms("lat_ms", 10.0, 1.0);
        fresh.throughput("brand_new", 5.0);
        let o = compare(&b, &fresh, 1.0);
        assert!(!o.pass, "baseline metric gone missing must fail");
        let missing = o.deltas.iter().find(|d| d.name == "exact").unwrap();
        assert!(!missing.pass);
        assert_eq!(missing.note, "missing");
        let new = o.deltas.iter().find(|d| d.name == "brand_new").unwrap();
        assert!(new.pass);
        assert_eq!(new.note, "new");
    }

    #[test]
    fn mode_mismatch_fails() {
        let b = base_report();
        let mut fresh = b.clone();
        fresh.mode = "full".into();
        let o = compare(&b, &fresh, 1.0);
        assert!(!o.pass);
        assert!(o.problems[0].contains("mode mismatch"), "{:?}", o.problems);
    }

    #[test]
    fn nan_fails() {
        let b = base_report();
        let o = compare(&b, &fresh_like(f64::NAN, 10.0, 1.0), 1.0);
        assert!(!o.pass);
        assert_eq!(
            o.deltas.iter().find(|d| d.name == "tput").unwrap().note,
            "nan"
        );
    }

    #[test]
    fn run_and_bless_over_directories() {
        let root = std::env::temp_dir().join(format!("typhoon-gate-{}", std::process::id()));
        let base_dir = root.join("base");
        let fresh_dir = root.join("fresh");
        std::fs::create_dir_all(&base_dir).unwrap();
        std::fs::create_dir_all(&fresh_dir).unwrap();
        let figures = vec!["fig9".to_string()];

        // No baseline yet: gate fails, pointing at --bless.
        fresh_like(100_000.0, 10.0, 1.0)
            .write(&fresh_dir.join(bench_file_name("fig9")))
            .unwrap();
        let o = run(&base_dir, &fresh_dir, &figures, 1.0);
        assert!(!o.pass());
        assert!(o.figures[0].problems[0].contains("--bless"));

        // Bless adopts the fresh run; the gate then passes.
        let refreshed = bless(&base_dir, &fresh_dir, &figures).unwrap();
        assert_eq!(refreshed, vec!["BENCH_fig9.json".to_string()]);
        assert!(run(&base_dir, &fresh_dir, &figures, 1.0).pass());

        // A perturbed fresh run fails and the table says why.
        fresh_like(10_000.0, 10.0, 1.0)
            .write(&fresh_dir.join(bench_file_name("fig9")))
            .unwrap();
        let o = run(&base_dir, &fresh_dir, &figures, 1.0);
        assert!(!o.pass());
        let table = render_table(&o, 1.0);
        assert!(table.contains("FAIL"), "{table}");
        assert!(table.contains("tput"), "{table}");

        // Missing fresh file fails.
        std::fs::remove_file(fresh_dir.join(bench_file_name("fig9"))).unwrap();
        let o = run(&base_dir, &fresh_dir, &figures, 1.0);
        assert!(!o.pass());
        assert!(o.figures[0].problems[0].contains("fresh run unreadable"));

        std::fs::remove_dir_all(&root).ok();
    }
}
