//! Experiment: Fig. 9 — one-to-many communication.
//!
//! "Fig. 9 shows the throughput performance of Storm and Typhoon when the
//! number of sink workers increases from two to six. The figure clearly
//! shows the increasing performance gap: while the throughput of the
//! former significantly drops with more sink workers due to multiple
//! serializations, data copies and TCP overhead, the latter shows similar
//! throughput regardless of the number of sink workers."
//!
//! Besides wall-clock throughput, this binary prints the *serialization
//! counters* — the mechanism itself: Storm performs `fanout` spout-side
//! serializations per tuple; Typhoon performs exactly one.

use std::time::Duration;
use typhoon_bench::harness::{measure_rate, print_rate_row, BenchOpts};
use typhoon_bench::report::{Direction, Report};
use typhoon_bench::workloads::{broadcast_topology, register_standard};
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_model::ComponentRegistry;
use typhoon_storm::{StormCluster, StormConfig};

const PAYLOAD: usize = 100;
const SPOUT_BATCH: usize = 64;

/// Run parameters, compressed by `--short`.
struct Cfg {
    warmup: Duration,
    measure: Duration,
    sinks: &'static [usize],
}

impl Cfg {
    fn new(opts: &BenchOpts) -> Self {
        Cfg {
            warmup: opts.pick(Duration::from_secs(1), Duration::from_millis(200)),
            measure: opts.pick(Duration::from_secs(3), Duration::from_millis(600)),
            sinks: opts.pick(&[2, 3, 4, 5, 6][..], &[2, 4, 6][..]),
        }
    }
}

/// Runs one configuration; returns (per-sink rate, spout serializations
/// per emitted tuple).
fn storm_broadcast(cfg: &Cfg, remote: bool, sinks: usize) -> (f64, f64) {
    let mut reg = ComponentRegistry::new();
    let (sink, _) = register_standard(&mut reg, PAYLOAD, SPOUT_BATCH);
    let config = if remote {
        StormConfig::tcp(2)
    } else {
        StormConfig::local(1)
    };
    let cluster = StormCluster::new(config, reg);
    let handle = cluster.submit(broadcast_topology(sinks)).expect("submit");
    let rate = measure_rate(|| sink.count(), cfg.warmup, cfg.measure) / sinks as f64;
    let spout_task = handle.tasks_of("source")[0];
    let emitted_roots = handle
        .registry(spout_task)
        .map(|r| r.snapshot().counter("tuples.emitted"))
        .unwrap_or(0);
    let (serializations, _) = cluster.ser_stats().counts();
    // Sink-side work adds deserializations only; spout-side serializations
    // dominate the counter. Ratio ≈ serializations per broadcast emission.
    let ser_per_tuple = if emitted_roots > 0 {
        serializations as f64 / (emitted_roots as f64 / sinks as f64)
    } else {
        0.0
    };
    cluster.shutdown();
    (rate, ser_per_tuple)
}

fn typhoon_broadcast(cfg: &Cfg, remote: bool, sinks: usize) -> (f64, f64) {
    let mut reg = ComponentRegistry::new();
    let (sink, _) = register_standard(&mut reg, PAYLOAD, SPOUT_BATCH);
    let config = if remote {
        let mut c = TyphoonConfig::new(2).with_tcp_tunnels();
        c.slots_per_host = 1 + sinks / 2;
        c.with_batch_size(250)
    } else {
        TyphoonConfig::new(1).with_batch_size(250)
    };
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    let handle = cluster.submit(broadcast_topology(sinks)).expect("submit");
    let rate = measure_rate(|| sink.count(), cfg.warmup, cfg.measure) / sinks as f64;
    let spout_task = handle.tasks_of("source")[0];
    let roots = handle
        .worker(spout_task)
        .map(|w| w.registry.snapshot().counter("tuples.emitted"))
        .unwrap_or(0);
    let (serializations, _) = cluster.ser_stats().counts();
    let ser_per_tuple = if roots > 0 {
        serializations as f64 / roots as f64
    } else {
        0.0
    };
    cluster.shutdown();
    (rate, ser_per_tuple)
}

fn main() {
    let opts = BenchOpts::from_env();
    let cfg = Cfg::new(&opts);
    let mut report = Report::new("fig9", "one-to-many communication", opts.mode());
    println!("== Fig. 9: one-to-many communication, 2..6 sink workers ==");
    println!("(rates are per-sink delivered tuples/sec, as in the paper's y-axis)");
    for remote in [false, true] {
        let place = if remote { "REMOTE" } else { "LOCAL" };
        let tag = if remote { "remote" } else { "local" };
        for &sinks in cfg.sinks {
            let (storm, storm_ser) = storm_broadcast(&cfg, remote, sinks);
            print_rate_row(
                &format!("STORM   ({place}) sinks={sinks} ser/tuple={storm_ser:.1}"),
                storm,
            );
            report.throughput(
                format!("throughput_per_sink.{tag}.storm.sinks{sinks}"),
                storm,
            );
            report.metric(
                format!("ser_per_tuple.{tag}.storm.sinks{sinks}"),
                storm_ser,
                "count",
                Direction::LowerIsBetter,
                0.25,
            );
        }
        for &sinks in cfg.sinks {
            let (typhoon, ty_ser) = typhoon_broadcast(&cfg, remote, sinks);
            print_rate_row(
                &format!("TYPHOON ({place}) sinks={sinks} ser/tuple={ty_ser:.1}"),
                typhoon,
            );
            report.throughput(
                format!("throughput_per_sink.{tag}.typhoon.sinks{sinks}"),
                typhoon,
            );
            // The paper's mechanism claim: Typhoon serializes each tuple
            // exactly once at any fanout. Pin it tightly.
            report.metric(
                format!("ser_per_tuple.{tag}.typhoon.sinks{sinks}"),
                ty_ser,
                "count",
                Direction::LowerIsBetter,
                0.25,
            );
        }
    }
    opts.emit(&report);
}
