//! Experiment: chaos — the word-count shape under injected tunnel faults.
//!
//! Runs the Fig. 2 word-count shape (replaying sequence source → 2 relay
//! workers → 2 field-grouped sinks) on two hosts with every inter-host
//! tunnel wrapped in a seeded [`typhoon_net::FaultInjector`], and measures how long
//! full completion (every root acked) takes under each fault class
//! compared to the clean baseline. This is the quantitative companion of
//! the chaos test suite: recovery is not just *possible*, it is *cheap*
//! relative to the heartbeat timeout the paper's Fig. 10 baseline pays.
//!
//! ```text
//! exp_chaos [--roots N] [--seed S] [--class drop|delay|dup|corrupt|all]
//! ```

use std::time::{Duration, Instant};
use typhoon_bench::harness::BenchOpts;
use typhoon_bench::report::{Direction, Report};
use typhoon_controller::apps::FaultDetector;
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_model::{ComponentRegistry, Fields, Grouping, LogicalTopology};
use typhoon_net::{ChaosStats, FaultPlan, FaultSpec, KillClass, KillSpec};

const DEFAULT_SEED: u64 = 0xc4a0_5eed;

fn word_count_shape() -> LogicalTopology {
    LogicalTopology::builder("chaos-word-count")
        .spout("input", "seq-spout", 1, Fields::new(["seq", "payload"]))
        .bolt("split", "relay", 2, Fields::new(["seq", "payload"]))
        .bolt("count", "seq-sink", 2, Fields::new(["seq"]))
        .edge("input", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["seq".into()]))
        .build()
        .expect("valid topology")
}

struct Outcome {
    completed: u64,
    delivered: u64,
    elapsed: Duration,
    injected: Vec<(&'static str, u64)>,
    /// Leader-failover latency (elect + rule re-sync), 0 when no
    /// controller kill was armed.
    failover_ms: u64,
}

fn run_class(name: &str, plan: FaultPlan, roots: i64) -> Outcome {
    // A controller kill needs a standby replica to fail over to.
    let controller_kill = plan
        .kill
        .map(|k| k.class == KillClass::Controller)
        .unwrap_or(false);
    let mut reg = ComponentRegistry::new();
    let (sink, _agg) = typhoon_bench::workloads::register_standard(&mut reg, 16, 8);
    let mut config = TyphoonConfig::new(2)
        .with_batch_size(8)
        .with_acking(Duration::from_secs(2), 256)
        .with_chaos(plan);
    if controller_kill {
        config = config.with_controller_replicas(2);
    }
    config.slots_per_host = 3;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    // Registered per replica, so a successor leader detects faults too.
    cluster.add_control_app(|| Box::new(FaultDetector::new()));
    cluster.register_spout("seq-spout", move || {
        typhoon_bench::workloads::SeqSpout::new(16, 8).with_limit(roots)
    });
    let start = Instant::now();
    let handle = cluster.submit(word_count_shape()).expect("submit");
    let spout_task = handle.tasks_of("input")[0];
    let completed = || {
        handle
            .worker(spout_task)
            .map(|w| w.registry.snapshot().counter("acks.completed"))
            .unwrap_or(0)
    };
    let deadline = Instant::now() + Duration::from_secs(300);
    while completed() < roots as u64 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let elapsed = start.elapsed();
    // Aggregate injected-fault counters over every directed edge.
    let mut injected: Vec<(&'static str, u64)> = Vec::new();
    for from in 0..2u32 {
        for to in 0..2u32 {
            if from == to {
                continue;
            }
            if let Some(h) =
                cluster.chaos_handle(typhoon_model::HostId(from), typhoon_model::HostId(to))
            {
                merge(&mut injected, h.stats());
            }
        }
    }
    let mut failover_ms = 0;
    if controller_kill {
        // The kill is armed on a delay; make sure the failover actually
        // landed (and its latency was recorded) before reading it out.
        let plane = cluster.control_plane();
        let wait = Instant::now() + Duration::from_secs(10);
        while plane
            .registry()
            .snapshot()
            .counter("controller.ha.failovers")
            == 0
            && Instant::now() < wait
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        failover_ms = plane
            .registry()
            .snapshot()
            .gauge("controller.ha.failover_ms") as u64;
    }
    let out = Outcome {
        completed: completed(),
        delivered: sink.count(),
        elapsed,
        injected,
        failover_ms,
    };
    cluster.shutdown();
    let _ = name;
    out
}

fn merge(acc: &mut Vec<(&'static str, u64)>, stats: &ChaosStats) {
    for (k, v) in stats.named() {
        match acc.iter_mut().find(|(name, _)| *name == k) {
            Some((_, total)) => *total += v,
            None => acc.push((k, v)),
        }
    }
}

fn main() {
    let opts = BenchOpts::from_env();
    let args = &opts.rest;
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let roots: i64 = get("--roots")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| opts.pick(2_000, 300));
    let seed: u64 = get("--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let class = get("--class").unwrap_or_else(|| "all".into());
    let mut report = Report::new(
        "chaos",
        "completion time under injected tunnel faults",
        opts.mode(),
    )
    .with_seed(seed);

    // `key` is the dotted-metric-safe class name.
    let classes: Vec<(&str, &str, FaultPlan)> = vec![
        ("baseline", "baseline", FaultPlan::clean(seed)),
        (
            "drop-5%",
            "drop",
            FaultPlan::symmetric(seed, FaultSpec::CLEAN.dropping(0.05)),
        ),
        (
            "delay-25ms",
            "delay",
            FaultPlan::symmetric(seed, FaultSpec::CLEAN.delaying(Duration::from_millis(25))),
        ),
        (
            "dup-10%",
            "dup",
            FaultPlan::symmetric(seed, FaultSpec::CLEAN.duplicating(0.10)),
        ),
        (
            "corrupt-5%",
            "corrupt",
            FaultPlan::symmetric(seed, FaultSpec::CLEAN.corrupting(0.05)),
        ),
        (
            "ctl-kill",
            "ctl_kill",
            FaultPlan::clean(seed).with_kill(KillSpec::controller(Duration::from_millis(10))),
        ),
    ];
    println!("# exp_chaos: word-count on 2 hosts, {roots} roots, seed {seed}");
    println!(
        "# {:<12} {:>10} {:>10} {:>10}  injected",
        "class", "completed", "delivered", "secs"
    );
    for (name, key, plan) in classes {
        if class != "all" && !name.starts_with(class.as_str()) {
            continue;
        }
        let o = run_class(name, plan, roots);
        let injected: Vec<String> = o
            .injected
            .iter()
            .filter(|(k, v)| *v > 0 && *k != "chaos.forwarded")
            .map(|(k, v)| format!("{}={v}", k.trim_start_matches("chaos.")))
            .collect();
        println!(
            "  {:<12} {:>10} {:>10} {:>10.2}  {}",
            name,
            o.completed,
            o.delivered,
            o.elapsed.as_secs_f64(),
            injected.join(" ")
        );
        // Every root must complete under every fault class — exactness.
        report.exact(
            format!("completion_ratio.{key}"),
            o.completed as f64 / roots.max(1) as f64,
            "ratio",
        );
        // Completion time: recovery must stay cheap. Wide tolerance —
        // retransmit timing under drop/corrupt is scheduling-sensitive.
        report.time_ms(
            format!("completion_ms.{key}"),
            o.elapsed.as_secs_f64() * 1e3,
            1.5,
        );
        report.metric(
            format!("delivered_ratio.{key}"),
            o.delivered as f64 / roots.max(1) as f64,
            "ratio",
            Direction::HigherIsBetter,
            0.5,
        );
        if key == "ctl_kill" {
            // Leader failover (election + rule re-sync) must stay cheap;
            // the gate holds the budget. Sub-millisecond failovers floor
            // at 1ms so the baseline is never zero (a zero baseline makes
            // every relative comparison degenerate); the wide tolerance
            // is the actual budget: ~tens of ms, not hundreds.
            report.time_ms("failover_ms.ctl_kill", o.failover_ms.max(1) as f64, 20.0);
        }
    }
    opts.emit(&report);
}
