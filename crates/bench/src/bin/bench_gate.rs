//! `bench-gate` — compares a fresh `BENCH_*.json` matrix against the
//! committed baselines and fails on direction-aware regressions.
//!
//! ```text
//! bench-gate [--baseline DIR] --fresh DIR [--slack F] [--figures a,b,..] [--bless]
//!
//!   --baseline DIR   directory holding the committed BENCH_*.json
//!                    baselines (default: .)
//!   --fresh DIR      directory holding the just-generated matrix
//!                    (each exp_* binary's --json output)
//!   --slack F        multiply every per-metric tolerance by F (default 1;
//!                    CI uses > 1 to absorb cross-machine variance)
//!   --figures a,b    comma-separated figure subset (default: all nine)
//!   --bless          instead of comparing, adopt the fresh files as the
//!                    new baselines
//! ```
//!
//! Exit codes: 0 = pass (or bless succeeded), 1 = regression / missing
//! file / mode mismatch, 2 = usage error. The delta table always prints.

use std::path::PathBuf;
use typhoon_bench::gate;

fn usage() -> ! {
    eprintln!(
        "usage: bench-gate [--baseline DIR] --fresh DIR [--slack F] \
         [--figures a,b,..] [--bless]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline = PathBuf::from(".");
    let mut fresh: Option<PathBuf> = None;
    let mut slack = 1.0f64;
    let mut figures: Vec<String> = gate::FIGURES.iter().map(|s| s.to_string()).collect();
    let mut do_bless = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--baseline" => baseline = it.next().map(PathBuf::from).unwrap_or_else(|| usage()),
            "--fresh" => fresh = Some(it.next().map(PathBuf::from).unwrap_or_else(|| usage())),
            "--slack" => {
                slack = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|s: &f64| s.is_finite() && *s > 0.0)
                    .unwrap_or_else(|| usage())
            }
            "--figures" => {
                figures = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if figures.is_empty() {
                    usage();
                }
            }
            "--bless" => do_bless = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage();
            }
        }
    }
    let Some(fresh) = fresh else {
        eprintln!("--fresh DIR is required");
        usage();
    };

    if do_bless {
        match gate::bless(&baseline, &fresh, &figures) {
            Ok(refreshed) => {
                for name in &refreshed {
                    println!("blessed {} -> {}", name, baseline.join(name).display());
                }
                println!("bench-gate: {} baseline(s) refreshed", refreshed.len());
            }
            Err(e) => {
                eprintln!("bench-gate --bless failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let outcome = gate::run(&baseline, &fresh, &figures, slack);
    print!("{}", gate::render_table(&outcome, slack));
    if !outcome.pass() {
        std::process::exit(1);
    }
}
