//! Experiment: crash recovery — the §4 / Fig. 10 pipeline, phase by phase.
//!
//! Arms one seeded chaos kill per fault class (a stateful bolt's worker,
//! then its whole host, then the same worker kill with SDN detection
//! disabled so only the heartbeat fallback can find it) against the
//! replayable word-count topology, and prints the per-phase latency
//! breakdown of each recovery:
//!
//! ```text
//! detection → re-schedule → restart → restore → replay kick-off
//! ```
//!
//! Detection is where the SDN advantage lives: the port-status path reacts
//! in milliseconds while the heartbeat fallback sleeps out its timeout;
//! every later phase is identical. The run also verifies exactness — the
//! final aggregator counts must equal the recomputed ground truth.
//!
//! ```text
//! exp_recovery [--roots N] [--seed S] [--class worker|host|heartbeat|all]
//! ```
//!
//! The seed (also via `CHAOS_SEED`) drives victim selection and the word
//! stream, so a run replays exactly.

use std::collections::HashMap;
use std::time::{Duration, Instant};
use typhoon_bench::harness::BenchOpts;
use typhoon_bench::report::Report;
use typhoon_bench::workloads::{
    expected_word_counts, recovery_word_count_topology, register_replay_spout, register_standard,
};
use typhoon_controller::apps::FaultDetector;
use typhoon_core::{RecoveryReport, SchedulerKind, TyphoonCluster, TyphoonConfig};
use typhoon_model::ComponentRegistry;
use typhoon_net::{FaultPlan, KillClass, KillSpec};

const DEFAULT_SEED: u64 = 0xc4a0_5eed;

struct Outcome {
    /// Kill execution → first completed recovery (includes detection).
    detect: Duration,
    reports: Vec<RecoveryReport>,
    heartbeat_detected: u64,
    deduped: u64,
    replayed: u64,
    exact: bool,
    elapsed: Duration,
}

fn run_class(
    kill: KillSpec,
    sdn_detection: bool,
    roots: i64,
    seed: u64,
    heartbeat: Duration,
) -> Outcome {
    let mut reg = ComponentRegistry::new();
    let (_sink, agg) = register_standard(&mut reg, 16, 4);
    register_replay_spout(&mut reg, seed, 4, roots);
    let mut config = TyphoonConfig::new(2)
        .with_batch_size(4)
        .with_acking(Duration::from_secs(2), 64)
        .with_checkpoints(Duration::from_millis(100))
        .with_recovery(heartbeat)
        .with_chaos(FaultPlan::clean(seed).with_kill(kill));
    config.slots_per_host = 8;
    config.scheduler = SchedulerKind::RoundRobin;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    if sdn_detection {
        cluster.controller().add_app(Box::new(FaultDetector::new()));
    }
    let start = Instant::now();
    let handle = cluster
        .submit(recovery_word_count_topology(2, 2))
        .expect("submit");
    let recovery = cluster.recovery().expect("recovery manager").clone();
    let chaos = cluster.cluster_chaos().expect("chaos handle").clone();
    let killed = |class: KillClass| {
        let name = match class {
            KillClass::Worker => "chaos.killed_workers",
            KillClass::Host => "chaos.killed_hosts",
            KillClass::Controller => "chaos.killed_controllers",
        };
        chaos
            .stats()
            .named()
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
            .unwrap_or(0)
    };
    let deadline = Instant::now() + Duration::from_secs(300);
    while killed(kill.class) == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let killed_at = Instant::now();
    let recovered = || recovery.registry().snapshot().counter("recovery.recovered");
    while recovered() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let detect = killed_at.elapsed();

    // Run to completion and check exactness against the recomputed truth.
    let spout_task = handle.tasks_of("input")[0];
    let completed = || {
        handle
            .worker(spout_task)
            .map(|w| w.registry.snapshot().counter("acks.completed"))
            .unwrap_or(0)
    };
    let expected = expected_word_counts(seed, roots);
    let exact = loop {
        let counts: HashMap<String, i64> = agg.counts.lock().clone();
        if completed() >= roots as u64 && counts == expected {
            break true;
        }
        if Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let elapsed = start.elapsed();
    // Worker-side recovery counters, summed over every live worker.
    let (mut deduped, mut replayed) = (0, 0);
    for task in handle
        .tasks_of("input")
        .into_iter()
        .chain(handle.tasks_of("count"))
    {
        if let Some(w) = handle.worker(task) {
            let snap = w.registry.snapshot();
            deduped += snap.counter("recovery.deduped");
            replayed += snap.counter("recovery.replayed_roots");
        }
    }
    let out = Outcome {
        detect,
        reports: recovery.reports(),
        heartbeat_detected: recovery
            .registry()
            .snapshot()
            .counter("recovery.heartbeat_detected"),
        deduped,
        replayed,
        exact,
        elapsed,
    };
    cluster.shutdown();
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let opts = BenchOpts::from_env();
    let args = &opts.rest;
    let get = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let roots: i64 = get("--roots")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| opts.pick(2_000, 300));
    let seed: u64 = get("--seed")
        .or_else(|| std::env::var("CHAOS_SEED").ok())
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SEED);
    let class = get("--class").unwrap_or_else(|| "all".into());
    // The heartbeat fallback dominates the heartbeat-class detection time,
    // so `--short` shrinks it to keep baseline generation fast.
    let heartbeat = Duration::from_secs(opts.pick(5, 2));
    let mut report =
        Report::new("recovery", "crash recovery phase breakdown", opts.mode()).with_seed(seed);

    let kill_after = Duration::from_millis(300);
    let classes: Vec<(&str, KillSpec, bool)> = vec![
        ("worker", KillSpec::worker(kill_after), true),
        ("host", KillSpec::host(kill_after), true),
        ("heartbeat", KillSpec::worker(kill_after), false),
    ];
    println!("# exp_recovery: replayable word-count on 2 hosts, {roots} roots, seed {seed}");
    println!(
        "# detection: SDN port-status when enabled, heartbeat timeout ({heartbeat:?}) otherwise"
    );
    println!(
        "# {:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>8} {:>6}",
        "class",
        "detect",
        "resched",
        "restart",
        "restore",
        "replay",
        "total",
        "tasks",
        "replayed",
        "deduped",
        "exact"
    );
    for (name, kill, sdn) in classes {
        if class != "all" && name != class {
            continue;
        }
        let o = run_class(kill, sdn, roots, seed, heartbeat);
        // Sum phases over every recovered task (a host kill recovers many).
        let sum =
            |f: fn(&RecoveryReport) -> Duration| -> Duration { o.reports.iter().map(f).sum() };
        println!(
            "  {:<10} {:>8.1}m {:>8.1}m {:>8.1}m {:>8.1}m {:>8.1}m {:>8.1}m {:>7} {:>9} {:>8} {:>6}",
            name,
            ms(o.detect),
            ms(sum(|r| r.reschedule)),
            ms(sum(|r| r.restart)),
            ms(sum(|r| r.restore)),
            ms(sum(|r| r.replay)),
            ms(sum(|r| r.total)),
            o.reports.len(),
            o.replayed,
            o.deduped,
            o.exact
        );
        if o.heartbeat_detected > 0 {
            println!(
                "    (detected via heartbeat fallback x{})",
                o.heartbeat_detected
            );
        }
        println!("    run completed in {:.2}s", o.elapsed.as_secs_f64());
        // Detection is the SDN claim; the port-status path is fast but
        // its absolute value is tiny (tens of ms), so relative tolerances
        // must absorb scheduler jitter. The heartbeat class is dominated
        // by the (configured) timeout and is therefore much tighter.
        let detect_tol = if name == "heartbeat" { 1.0 } else { 9.0 };
        report.time_ms(format!("detect_ms.{name}"), ms(o.detect), detect_tol);
        report.time_ms(
            format!("total_ms.{name}"),
            o.elapsed.as_secs_f64() * 1e3,
            2.0,
        );
        report.exact(
            format!("exact.{name}"),
            if o.exact { 1.0 } else { 0.0 },
            "bool",
        );
    }
    opts.emit(&report);
}
