//! Experiment: Fig. 11 — auto-scaling under overload.
//!
//! The word-count topology runs with an input rate deliberately above what
//! two split workers can absorb (each split worker has a fixed per-tuple
//! service time, modelling per-worker capacity).
//!
//! * **Storm** (Fig. 11(a)): the overloaded split workers' queues grow
//!   until a simulated `OutOfMemoryError` kills them; the supervisor
//!   restarts them and the cycle repeats — count-worker throughput
//!   oscillates indefinitely.
//! * **Typhoon** (Figs. 11(b)/(c)): the auto-scaler app polls the split
//!   workers' queue depths via `METRIC_REQ` control tuples, detects the
//!   overload, and submits a scale-up reconfiguration; the third split
//!   worker takes a share of the input and throughput stabilizes.

use std::time::Duration;
use typhoon_bench::harness::{
    aggregate_timeline_points, print_aggregate_timeline, print_timeline, timeline_points,
    window_mean, BenchOpts,
};
use typhoon_bench::report::{Direction, Report};
use typhoon_bench::workloads::{word_count_topology, CountBolt, SentenceSpout, SplitBolt};
use typhoon_controller::apps::{AutoScaler, AutoScalerConfig};
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_metrics::RateMeter;
use typhoon_model::{Bolt, ComponentRegistry, Emitter};
use typhoon_storm::{StormCluster, StormConfig};
use typhoon_tuple::Tuple;

/// Input sentences/sec — above 2×capacity, below 3×capacity.
const INPUT_RATE: u32 = 3_000;
/// Per-split service time: capacity ≈ 1250 sentences/sec each.
const SERVICE: Duration = Duration::from_micros(800);

/// Timeline parameters, compressed by `--short`. The short run keeps the
/// same overload ratio; only the observation window, the auto-scaler
/// cooldown, and the Storm OOM cap shrink so the scale-up (and at least
/// one OOM cycle) land inside the window.
struct Cfg {
    total_secs: usize,
    cooldown: Duration,
    mem_cap: usize,
}

impl Cfg {
    fn new(opts: &BenchOpts) -> Self {
        Cfg {
            total_secs: opts.pick(40, 16),
            cooldown: Duration::from_secs(opts.pick(15, 4)),
            mem_cap: opts.pick(4_000, 2_000),
        }
    }

    /// Windows of the settled post-scale-up state: the last quarter of
    /// the run.
    fn post_windows(&self) -> (usize, usize) {
        (self.total_secs * 3 / 4, self.total_secs)
    }
}

/// A split worker with bounded service rate (sleeping does not consume
/// the single benchmark CPU, so per-worker capacity is explicit and
/// scale-up genuinely adds capacity, as it does on a multi-core testbed).
struct SlowSplit {
    inner: SplitBolt,
}

impl Bolt for SlowSplit {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        std::thread::sleep(SERVICE);
        self.inner.execute(input, out);
    }
}

fn register(reg: &mut ComponentRegistry) {
    reg.register_spout("sentence-spout", || SentenceSpout::new(16));
    reg.register_bolt("split", || SlowSplit { inner: SplitBolt });
    reg.register_bolt("count", CountBolt::new);
}

fn run_storm(cfg: &Cfg) -> (Vec<RateMeter>, u64) {
    let mut reg = ComponentRegistry::new();
    register(&mut reg);
    let config = StormConfig {
        heartbeat_timeout: Duration::from_secs(2),
        monitor_interval: Duration::from_millis(100),
        ..StormConfig::local(3)
    }
    .with_mem_cap("split", cfg.mem_cap);
    let cluster = StormCluster::new(config, reg);
    let handle = cluster.submit(word_count_topology(2, 4)).expect("submit");
    handle.set_input_rate(handle.tasks_of("input")[0], Some(INPUT_RATE));
    let meters: Vec<RateMeter> = handle
        .tasks_of("count")
        .into_iter()
        .filter_map(|t| handle.meter(t))
        .collect();
    std::thread::sleep(Duration::from_secs(cfg.total_secs as u64));
    let oom: u64 = handle
        .tasks_of("split")
        .into_iter()
        .map(|t| handle.restarts(t) as u64)
        .sum();
    cluster.shutdown();
    (meters, oom)
}

fn run_typhoon(cfg: &Cfg) -> (Vec<RateMeter>, Vec<(String, RateMeter)>, usize) {
    let mut reg = ComponentRegistry::new();
    register(&mut reg);
    let mut config = TyphoonConfig::new(3).with_batch_size(100);
    config.slots_per_host = 4;
    config.controller_tick = Duration::from_millis(200);
    // Large rings (§8): overload shows up as queue depth the control plane
    // can observe, not as drops that would starve control tuples.
    config.ring_capacity = 1 << 17;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    cluster
        .controller()
        .add_app(Box::new(AutoScaler::new(AutoScalerConfig {
            topology: "word-count".into(),
            node: "split".into(),
            // Typhoon queue depth is measured in ring *frames* (~100 tuples
            // each with this batch size); 15 frames ≈ 1500 queued tuples.
            metric: "queue.depth".into(),
            high_watermark: 15,
            low_watermark: 0, // no scale-down during the experiment
            min_parallelism: 2,
            max_parallelism: 3,
            cooldown: cfg.cooldown,
        })));
    let handle = cluster.submit(word_count_topology(2, 4)).expect("submit");
    cluster.controller().send_control(
        handle.app(),
        handle.tasks_of("input")[0],
        &typhoon_controller::ControlTuple::InputRate {
            tuples_per_sec: INPUT_RATE,
        },
    );
    let count_meters: Vec<RateMeter> = handle
        .tasks_of("count")
        .into_iter()
        .filter_map(|t| handle.worker(t).map(|w| w.meter))
        .collect();
    std::thread::sleep(Duration::from_secs(cfg.total_secs as u64));
    // Collect split meters at the end so the scaled-up worker is included.
    let split_meters: Vec<(String, RateMeter)> = handle
        .tasks_of("split")
        .into_iter()
        .enumerate()
        .filter_map(|(i, t)| {
            handle
                .worker(t)
                .map(|w| (format!("SPLIT{}", i + 1), w.meter))
        })
        .collect();
    let final_parallelism = handle.tasks_of("split").len();
    cluster.shutdown();
    (count_meters, split_meters, final_parallelism)
}

fn main() {
    let opts = BenchOpts::from_env();
    let cfg = Cfg::new(&opts);
    println!("== Fig. 11: auto scale-up under overload ==");
    println!(
        "# input {INPUT_RATE} sentences/s vs per-split capacity ~{:.0}/s",
        1.0 / SERVICE.as_secs_f64()
    );
    let mut report = Report::new("fig11", "auto scale-up under overload", opts.mode());
    let (post_from, post_to) = cfg.post_windows();

    let (meters, oom) = run_storm(&cfg);
    println!("# storm: split workers OOM-restarted {oom} times");
    print_aggregate_timeline("fig11a/storm-count-workers", &meters, cfg.total_secs);
    let storm_points = aggregate_timeline_points(&meters, cfg.total_secs);
    report.push_series("fig11a/storm-count-workers", "tuples/sec", storm_points);
    // Informational: the oscillation mechanism requires at least one OOM
    // restart; loose upper tolerance, a drop to zero would flag a broken
    // overload setup just as well via the throughput metrics below.
    report.metric(
        "storm_oom_restarts",
        oom as f64,
        "count",
        Direction::LowerIsBetter,
        5.0,
    );

    let (count_meters, split_meters, parallelism) = run_typhoon(&cfg);
    println!("# typhoon: final split parallelism = {parallelism} (auto-scaled from 2)");
    print_aggregate_timeline(
        "fig11b/typhoon-count-workers",
        &count_meters,
        cfg.total_secs,
    );
    let ty_points = aggregate_timeline_points(&count_meters, cfg.total_secs);
    let post_scale = window_mean(&ty_points, post_from, post_to);
    report.push_series("fig11b/typhoon-count-workers", "tuples/sec", ty_points);
    for (label, meter) in &split_meters {
        print_timeline(&format!("fig11c/typhoon-{label}"), meter, 0, cfg.total_secs);
        report.push_series(
            format!("fig11c/typhoon-{label}"),
            "tuples/sec",
            timeline_points(meter, 0, cfg.total_secs),
        );
    }
    // The figure's claim: the auto-scaler lands exactly one scale-up
    // (2 → 3) and the post-scale throughput holds.
    report.exact("final_split_parallelism", parallelism as f64, "workers");
    report.throughput("throughput.typhoon.post_scale", post_scale);
    println!("# expected shape: storm oscillates with OOM restarts; typhoon");
    println!("# scales up once and stabilizes, the new split absorbing load.");
    opts.emit(&report);
}
