//! Experiment: Fig. 8 — baseline performance, Storm vs Typhoon.
//!
//! * `exp_fig8 a`  — Fig. 8(a): tuple-forwarding throughput, LOCAL and
//!   REMOTE, Storm vs Typhoon with I/O batch sizes {100, 250, 500, 1000}.
//! * `exp_fig8 b`  — Fig. 8(b): the same with guaranteed processing (one
//!   acker), plus
//! * `exp_fig8 cd` — Figs. 8(c)/(d): end-to-end latency CDFs measured at
//!   the source on ack completion.
//! * `exp_fig8 all` (default) — everything.
//! * `exp_fig8 --trace [rate]` — per-hop latency breakdown from the
//!   end-to-end tuple tracer (sampling 1 in `rate`, default 16), LOCAL
//!   and REMOTE, closing with the hop-sum vs e2e-mean cross-check.
//!
//! Expected shape (per the paper): throughput is comparable between the
//! two systems in both placements; acking costs roughly half the
//! throughput on both; Typhoon's latency falls below Storm's at small
//! batch sizes and above it at large ones.

use std::time::Duration;
use typhoon_bench::harness::{
    measure_rate, print_cdf, print_hop_table, print_rate_row, quantile_from_cdf, BenchOpts,
};
use typhoon_bench::report::{Direction, Report, LATENCY_TOL};
use typhoon_bench::workloads::{forwarding_topology, register_standard};
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_model::ComponentRegistry;
use typhoon_storm::{StormCluster, StormConfig};

const PAYLOAD: usize = 100;
const SPOUT_BATCH: usize = 64;

/// Run parameters, compressed by `--short` (CI / baseline generation).
struct Cfg {
    warmup: Duration,
    measure: Duration,
    batches: &'static [usize],
}

impl Cfg {
    fn new(opts: &BenchOpts) -> Self {
        Cfg {
            warmup: opts.pick(Duration::from_secs(1), Duration::from_millis(200)),
            measure: opts.pick(Duration::from_secs(3), Duration::from_millis(600)),
            batches: opts.pick(&[100, 250, 500, 1000][..], &[100, 1000][..]),
        }
    }
}

/// `(system label, remote placement, latency CDF points)`.
type LabeledCdf = (String, bool, Vec<(u64, f64)>);

fn storm_forwarding(
    cfg: &Cfg,
    remote: bool,
    acking: bool,
    rate_cap: Option<u32>,
) -> (f64, Vec<(u64, f64)>) {
    let mut reg = ComponentRegistry::new();
    let (sink, _) = register_standard(&mut reg, PAYLOAD, SPOUT_BATCH);
    let mut config = if remote {
        StormConfig::tcp(2)
    } else {
        StormConfig::local(1)
    };
    if acking {
        config = config.with_acking(Duration::from_secs(10), 2048);
    }
    let cluster = StormCluster::new(config, reg);
    let handle = cluster.submit(forwarding_topology()).expect("submit");
    if rate_cap.is_some() {
        handle.set_input_rate(handle.tasks_of("source")[0], rate_cap);
    }
    let rate = measure_rate(|| sink.count(), cfg.warmup, cfg.measure);
    let cdf = handle
        .registry(handle.tasks_of("source")[0])
        .map(|r| r.histogram("latency").cdf())
        .unwrap_or_default();
    cluster.shutdown();
    (rate, cdf)
}

fn typhoon_forwarding(
    cfg: &Cfg,
    remote: bool,
    acking: bool,
    batch: usize,
    rate_cap: Option<u32>,
) -> (f64, Vec<(u64, f64)>, f64) {
    let mut reg = ComponentRegistry::new();
    let (sink, _) = register_standard(&mut reg, PAYLOAD, SPOUT_BATCH);
    let mut config = if remote {
        // One slot per host forces source and sink onto different hosts
        // (plus a third host for the acker when enabled).
        let mut c = TyphoonConfig::new(3).with_tcp_tunnels();
        c.slots_per_host = 1;
        c
    } else {
        TyphoonConfig::new(1)
    };
    config = config.with_batch_size(batch);
    if rate_cap.is_some() {
        // The latency run: batch fill time, not the flush deadline, should
        // dominate, so widen the deadline (the paper's I/O layer trades
        // latency for throughput purely via batch size).
        config.io.batch_delay = Duration::from_millis(50);
    }
    if acking {
        config = config.with_acking(Duration::from_secs(10), 2048);
    }
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    let handle = cluster.submit(forwarding_topology()).expect("submit");
    if let Some(cap) = rate_cap {
        cluster.controller().send_control(
            handle.app(),
            handle.tasks_of("source")[0],
            &typhoon_controller::ControlTuple::InputRate {
                tuples_per_sec: cap,
            },
        );
    }
    let rate = measure_rate(|| sink.count(), cfg.warmup, cfg.measure);
    let cdf = handle
        .worker(handle.tasks_of("source")[0])
        .map(|w| w.registry.histogram("latency").cdf())
        .unwrap_or_default();
    let hit_ratio = cluster.cache_stats().hit_ratio();
    cluster.shutdown();
    (rate, cdf, hit_ratio)
}

fn fig8a(cfg: &Cfg, report: &mut Report) {
    println!("== Fig. 8(a): tuple forwarding throughput (no acking) ==");
    for remote in [false, true] {
        let place = if remote { "REMOTE" } else { "LOCAL" };
        let tag = if remote { "remote" } else { "local" };
        let (storm, _) = storm_forwarding(cfg, remote, false, None);
        print_rate_row(&format!("STORM          ({place})"), storm);
        report.throughput(format!("throughput.{tag}.storm"), storm);
        for &batch in cfg.batches {
            let (typhoon, _, hit_ratio) = typhoon_forwarding(cfg, remote, false, batch, None);
            print_rate_row(&format!("TYPHOON({batch:<4})  ({place})"), typhoon);
            println!("    flow-cache hit ratio: {:.4}", hit_ratio);
            report.throughput(format!("throughput.{tag}.typhoon.b{batch}"), typhoon);
            // The megaflow fast path: steady state must resolve the vast
            // majority of frames without the flow-table lock.
            report.metric(
                format!("cache.hit_ratio.{tag}.typhoon.b{batch}"),
                hit_ratio,
                "ratio",
                Direction::HigherIsBetter,
                0.1,
            );
        }
    }
}

fn fig8b_cd(cfg: &Cfg, report: &mut Report, print_throughput: bool, print_latency: bool) {
    if print_throughput {
        println!("== Fig. 8(b): tuple forwarding with ACK (guaranteed processing) ==");
    }
    // Latency runs are input-capped below either system's capacity so the
    // CDF measures pipeline residence (batching), not queueing delay.
    let rate_cap = if print_latency { Some(50_000) } else { None };
    let mut cdfs: Vec<LabeledCdf> = Vec::new();
    for remote in [false, true] {
        let place = if remote { "REMOTE" } else { "LOCAL" };
        let tag = if remote { "remote" } else { "local" };
        let (storm, storm_cdf) = storm_forwarding(cfg, remote, true, rate_cap);
        if print_throughput {
            print_rate_row(&format!("STORM+ACK      ({place})"), storm);
            report.throughput(format!("throughput_ack.{tag}.storm"), storm);
        }
        cdfs.push(("STORM".into(), remote, storm_cdf));
        for &batch in cfg.batches {
            let (typhoon, cdf, _) = typhoon_forwarding(cfg, remote, true, batch, rate_cap);
            if print_throughput {
                print_rate_row(&format!("TYPHOON({batch:<4})+ACK ({place})"), typhoon);
                report.throughput(format!("throughput_ack.{tag}.typhoon.b{batch}"), typhoon);
            }
            cdfs.push((format!("TYPHOON({batch})"), remote, cdf));
        }
    }
    if print_latency {
        println!("== Fig. 8(c): end-to-end tuple latency CDF (LOCAL) ==");
        for (label, remote, cdf) in &cdfs {
            if !remote {
                print_cdf(&format!("local/{label}"), cdf);
            }
        }
        println!("== Fig. 8(d): end-to-end tuple latency CDF (REMOTE) ==");
        for (label, remote, cdf) in &cdfs {
            if *remote {
                print_cdf(&format!("remote/{label}"), cdf);
            }
        }
        for (label, remote, cdf) in &cdfs {
            let tag = if *remote { "remote" } else { "local" };
            let system = label
                .to_lowercase()
                .replace("typhoon(", "typhoon.b")
                .replace(')', "");
            for (q, qname) in [(0.5, "p50_ms"), (0.99, "p99_ms")] {
                if let Some(nanos) = quantile_from_cdf(cdf, q) {
                    report.metric(
                        format!("latency.{tag}.{system}.{qname}"),
                        nanos as f64 / 1e6,
                        "ms",
                        Direction::LowerIsBetter,
                        LATENCY_TOL,
                    );
                }
            }
        }
    }
}

fn fig8_trace(cfg: &Cfg, rate: u32) {
    println!("== exp_fig8 --trace: per-hop latency breakdown (Typhoon, ACK, 1/{rate} sampled) ==");
    for remote in [false, true] {
        let place = if remote { "REMOTE" } else { "LOCAL" };
        let mut reg = ComponentRegistry::new();
        let (sink, _) = register_standard(&mut reg, PAYLOAD, SPOUT_BATCH);
        let mut config = if remote {
            let mut c = TyphoonConfig::new(3).with_tcp_tunnels();
            c.slots_per_host = 1;
            c
        } else {
            TyphoonConfig::new(1)
        };
        config = config
            .with_batch_size(100)
            .with_acking(Duration::from_secs(10), 2048)
            .with_trace(rate);
        let cluster = TyphoonCluster::new(config, reg).expect("cluster");
        let _handle = cluster.submit(forwarding_topology()).expect("submit");
        let _ = measure_rate(|| sink.count(), cfg.warmup, cfg.measure);
        if let Some(tracer) = cluster.tracer() {
            print_hop_table(&format!("fig8/{place}"), tracer);
        }
        cluster.shutdown();
    }
}

fn main() {
    let opts = BenchOpts::from_env();
    let cfg = Cfg::new(&opts);
    if let Some(pos) = opts.rest.iter().position(|a| a == "--trace") {
        let rate = opts
            .rest
            .get(pos + 1)
            .and_then(|r| r.parse::<u32>().ok())
            .unwrap_or(16);
        fig8_trace(&cfg, rate);
        return;
    }
    let mode = opts.rest.first().cloned().unwrap_or_else(|| "all".into());
    let mut report = Report::new(
        "fig8",
        "baseline performance, Storm vs Typhoon",
        opts.mode(),
    );
    match mode.as_str() {
        "a" => fig8a(&cfg, &mut report),
        "b" => fig8b_cd(&cfg, &mut report, true, false),
        "cd" => fig8b_cd(&cfg, &mut report, false, true),
        "all" => {
            fig8a(&cfg, &mut report);
            fig8b_cd(&cfg, &mut report, true, false);
            fig8b_cd(&cfg, &mut report, false, true);
        }
        other => {
            eprintln!(
                "usage: exp_fig8 [a|b|cd|all] [--trace [rate]] [--json PATH] [--short] (got {other:?})"
            );
            std::process::exit(2);
        }
    }
    opts.emit(&report);
}
