//! Ablation: the Typhoon locality scheduler vs Storm's round-robin spread
//! (the design choice of §5: "the Typhoon scheduler assigns topologically
//! neighboring workers to the same compute node to minimize remote
//! inter-worker communication").
//!
//! Runs the word-count pipeline on a multi-host cluster under both
//! placements and reports remote edge pairs (the scheduler's objective)
//! and end-to-end sink throughput over TCP tunnels (where remote hops
//! actually cost).

use std::time::Duration;
use typhoon_bench::harness::{measure_rate, print_rate_row, BenchOpts};
use typhoon_bench::report::{Direction, Report};
use typhoon_bench::workloads::register_standard;
use typhoon_core::{SchedulerKind, TyphoonCluster, TyphoonConfig};
use typhoon_model::{ComponentRegistry, Fields, Grouping, LogicalTopology};

/// Run parameters, compressed by `--short`.
struct Cfg {
    warmup: Duration,
    measure: Duration,
}

impl Cfg {
    fn new(opts: &BenchOpts) -> Self {
        Cfg {
            warmup: opts.pick(Duration::from_secs(1), Duration::from_millis(300)),
            measure: opts.pick(Duration::from_secs(4), Duration::from_secs(1)),
        }
    }
}

fn pipeline() -> LogicalTopology {
    LogicalTopology::builder("ablate")
        .spout("source", "seq-spout", 1, Fields::new(["seq", "payload"]))
        .bolt("relay1", "relay", 2, Fields::new(["seq", "payload"]))
        .bolt("relay2", "relay", 2, Fields::new(["seq", "payload"]))
        .bolt("sink", "seq-sink", 1, Fields::new(["seq"]))
        .edge("source", "relay1", Grouping::Shuffle)
        .edge("relay1", "relay2", Grouping::Shuffle)
        .edge("relay2", "sink", Grouping::Global)
        .build()
        .expect("valid")
}

fn run(cfg: &Cfg, kind: SchedulerKind) -> (usize, f64) {
    let mut reg = ComponentRegistry::new();
    let (sink, _) = register_standard(&mut reg, 100, 64);
    let mut config = TyphoonConfig::new(3)
        .with_batch_size(250)
        .with_tcp_tunnels();
    config.slots_per_host = 2;
    config.scheduler = kind;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    let handle = cluster.submit(pipeline()).expect("submit");
    let physical = handle.physical().expect("physical");
    let remote_pairs = physical.remote_edge_pairs(&pipeline());
    let rate = measure_rate(|| sink.count(), cfg.warmup, cfg.measure);
    cluster.shutdown();
    (remote_pairs, rate)
}

fn main() {
    let opts = BenchOpts::from_env();
    let cfg = Cfg::new(&opts);
    println!("== Ablation: locality vs round-robin scheduling ==");
    println!("# 6-task pipeline over 3 hosts × 2 slots, real TCP tunnels");
    let mut report = Report::new(
        "ablation",
        "locality vs round-robin scheduling",
        opts.mode(),
    );
    let (lo_remote, lo_rate) = run(&cfg, SchedulerKind::Locality);
    let (rr_remote, rr_rate) = run(&cfg, SchedulerKind::RoundRobin);
    print_rate_row(
        &format!("TYPHOON locality     (remote pairs={lo_remote})"),
        lo_rate,
    );
    print_rate_row(
        &format!("TYPHOON round-robin  (remote pairs={rr_remote})"),
        rr_rate,
    );
    println!(
        "# locality cuts remote edge pairs {rr_remote} → {lo_remote} and changes throughput by {:+.0}%",
        (lo_rate / rr_rate - 1.0) * 100.0
    );
    // Placement is deterministic for a fixed pipeline, so the scheduler's
    // objective — fewer remote pairs than round-robin — is exact.
    report.exact(
        "locality_pairs_saved",
        rr_remote.saturating_sub(lo_remote) as f64,
        "pairs",
    );
    report.metric(
        "remote_pairs.locality",
        lo_remote as f64,
        "pairs",
        Direction::LowerIsBetter,
        0.0,
    );
    report.metric(
        "remote_pairs.round_robin",
        rr_remote as f64,
        "pairs",
        Direction::LowerIsBetter,
        0.0,
    );
    report.throughput("throughput.locality", lo_rate);
    report.throughput("throughput.round_robin", rr_rate);
    opts.emit(&report);
}
