//! Experiment: Figs. 13/14 — the Yahoo streaming benchmark and runtime
//! computation-logic reconfiguration.
//!
//! The advertisement-analytics pipeline of Fig. 13 (kafka-client → parse →
//! filter×3 → projection×3 → join×3 → aggregation&store) runs on Typhoon
//! with `typhoon-mq` as Kafka and `typhoon-kv` as Redis. A producer thread
//! feeds ad events continuously. At the midpoint the user submits a
//! reconfiguration replacing the filter logic: `filter-v1` (views only)
//! becomes `filter-v2` (views + clicks). "The reconfiguration procedure
//! does not require shut-down or topology hot swapping operations …
//! windowed count increases after replacing filter workers as the new
//! filtering logic allows more events."

use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_bench::harness::{print_timeline, timeline_points, BenchOpts};
use typhoon_bench::report::{Direction, Report};
use typhoon_bench::yahoo::{register_yahoo, yahoo_topology, EVENT_TYPES};
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_kv::KvStore;
use typhoon_model::{ComponentRegistry, ReconfigOp, ReconfigRequest};
use typhoon_mq::MessageQueue;

const EVENTS_PER_SEC: u64 = 8_000; // input-bound on the benchmark machine: no backlog lag
const ADS: usize = 100;
const CAMPAIGNS: usize = 10;
const SEED: u64 = 99;
/// The aggregation window of the Yahoo pipeline (event-time seconds).
const WINDOW_SECS: u64 = 10;

/// Timeline parameters, compressed by `--short`. The swap instant stays
/// on a 10 s aggregation-window boundary in both modes so windows are
/// cleanly before/after.
struct Cfg {
    total_secs: usize,
    reconfig_at: u64,
}

impl Cfg {
    fn new(opts: &BenchOpts) -> Self {
        Cfg {
            total_secs: opts.pick(40, 20),
            reconfig_at: opts.pick(20, 10),
        }
    }
}

fn main() {
    let opts = BenchOpts::from_env();
    let cfg = Cfg::new(&opts);
    println!("== Fig. 13/14: Yahoo ad analytics + runtime filter-logic swap ==");
    let mut report = Report::new(
        "fig14",
        "runtime computation-logic reconfiguration",
        opts.mode(),
    )
    .with_seed(SEED);
    let mq = Arc::new(MessageQueue::new());
    let kv = Arc::new(KvStore::new());
    mq.create_topic("ad-events", 1);
    for ad in 0..ADS {
        kv.set(&format!("ad:{ad}"), &format!("campaign:{}", ad % CAMPAIGNS));
    }
    let mut reg = ComponentRegistry::new();
    register_yahoo(&mut reg, mq.clone(), kv.clone(), "ad-events", 64);
    let mut config = TyphoonConfig::new(3).with_batch_size(100);
    config.slots_per_host = 6;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    let handle = cluster.submit(yahoo_topology()).expect("submit");

    // The event producer: a steady stream of view/click/purchase events
    // with event_time = real elapsed ms.
    let stop = Arc::new(AtomicBool::new(false));
    let producer = {
        let mq = mq.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(SEED);
            let t0 = Instant::now();
            let mut produced: u64 = 0;
            while !stop.load(Ordering::Acquire) {
                let target = t0.elapsed().as_millis() as u64 * EVENTS_PER_SEC / 1000;
                while produced < target {
                    let ad = rng.gen_range(0..ADS);
                    let event = EVENT_TYPES[rng.gen_range(0..EVENT_TYPES.len())];
                    let time_ms = t0.elapsed().as_millis() as u64;
                    let _ = mq.produce(
                        "ad-events",
                        None,
                        Bytes::from(format!("{ad}|{event}|{time_ms}")),
                    );
                    produced += 1;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let parse_meter = handle
        .worker(handle.tasks_of("parse")[0])
        .expect("parse worker")
        .meter;
    let store_meter = handle
        .worker(handle.tasks_of("store")[0])
        .expect("store worker")
        .meter;

    // Observe when the swap actually lands (new task ids for "filter").
    let watch_handle = handle.clone();
    let t0 = Instant::now();
    let deadline = Duration::from_secs(cfg.total_secs as u64 - 1);
    let watcher = std::thread::spawn(move || -> bool {
        let initial = watch_handle.tasks_of("filter");
        loop {
            let now = watch_handle.tasks_of("filter");
            if now != initial {
                println!(
                    "# swap landed at t={:.1}s: filter tasks {:?} -> {:?}",
                    t0.elapsed().as_secs_f64(),
                    initial,
                    now
                );
                return true;
            }
            std::thread::sleep(Duration::from_millis(100));
            if t0.elapsed() > deadline {
                return false;
            }
        }
    });
    std::thread::sleep(Duration::from_secs(cfg.reconfig_at));
    println!(
        "# t={}s: submitting SwapLogic filter-v1 → filter-v2 (REST path)",
        cfg.reconfig_at
    );
    handle
        .reconfigure_async(ReconfigRequest::single(
            "yahoo-ads",
            ReconfigOp::SwapLogic {
                node: "filter".into(),
                component: "filter-v2".into(),
            },
        ))
        .expect("submit reconfig");
    std::thread::sleep(Duration::from_secs(cfg.total_secs as u64 - cfg.reconfig_at));
    stop.store(true, Ordering::Release);
    producer.join().unwrap();
    let swap_landed = watcher.join().unwrap_or(false);

    print_timeline("fig14/parse-worker", &parse_meter, 0, cfg.total_secs);
    print_timeline("fig14/store-worker(sink)", &store_meter, 0, cfg.total_secs);
    report.push_series(
        "fig14/parse-worker",
        "tuples/sec",
        timeline_points(&parse_meter, 0, cfg.total_secs),
    );
    report.push_series(
        "fig14/store-worker(sink)",
        "tuples/sec",
        timeline_points(&store_meter, 0, cfg.total_secs),
    );

    // The windowed counts themselves (what Redis holds), summed across
    // campaigns per 10 s window — the paper's "windowed count increases"
    // evidence (Fig. 14's y-axis).
    println!(
        "# aggregate stored count per 10s window (swap at window {}):",
        cfg.reconfig_at / WINDOW_SECS
    );
    let mut per_window: std::collections::BTreeMap<u64, i64> = std::collections::BTreeMap::new();
    for c in 0..CAMPAIGNS {
        for (window, count) in kv.windows(&format!("campaign:{c}")) {
            *per_window.entry(window).or_insert(0) += count;
        }
    }
    let mut before = Vec::new();
    let mut after = Vec::new();
    for (&window, &count) in &per_window {
        let phase = if window < cfg.reconfig_at / WINDOW_SECS {
            before.push(count);
            "filter-v1 (views)"
        } else if (window + 1) * WINDOW_SECS <= cfg.total_secs as u64 {
            after.push(count);
            "filter-v2 (views+clicks)"
        } else {
            "partial"
        };
        println!("fig14/window w{window} {count:>8}  {phase}");
    }
    let mean = |v: &[i64]| v.iter().sum::<i64>() as f64 / v.len().max(1) as f64;
    let ratio = mean(&after) / mean(&before).max(1.0);
    println!(
        "# mean per full window: before swap = {:.0}, after = {:.0} (ratio {:.2}x; expected ~2x: 1/3 → 2/3 of events)",
        mean(&before),
        mean(&after),
        ratio
    );
    // The figure's claim: the swap lands without a restart and the
    // windowed count roughly doubles (filter-v2 passes 2/3 of events
    // instead of 1/3).
    report.exact("swap_landed", if swap_landed { 1.0 } else { 0.0 }, "bool");
    report.metric(
        "window_count_ratio",
        ratio,
        "ratio",
        Direction::HigherIsBetter,
        0.4,
    );
    report.metric(
        "window_count.before_mean",
        mean(&before),
        "count",
        Direction::HigherIsBetter,
        0.5,
    );
    report.metric(
        "window_count.after_mean",
        mean(&after),
        "count",
        Direction::HigherIsBetter,
        0.5,
    );
    cluster.shutdown();
    opts.emit(&report);
}
