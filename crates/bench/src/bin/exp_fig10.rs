//! Experiment: Fig. 10 — fault detection and recovery.
//!
//! The word-count topology (1 source, 2 split, 4 count) runs on three
//! hosts; at a known instant one split worker dies.
//!
//! * **Storm** (Fig. 10(a)): the death is only visible as a missing
//!   heartbeat. The supervisor restarts the worker, but the replacement is
//!   equally faulty (the paper injects a `NullPointerException` in the
//!   split logic), so the aggregate count-worker throughput drops to half
//!   and stays there.
//! * **Typhoon** (Fig. 10(b)): the switch reports an unexpected
//!   `PortStatus` delete; the fault-detector app immediately rewrites the
//!   predecessors' routing toward the surviving split worker, so aggregate
//!   throughput recovers at once (the survivor absorbs double load).
//!
//! Timeline compressed: the paper's 70 s / 30 s-heartbeat becomes
//! 24 s / 5 s-heartbeat; the ordering (Typhoon recovers ≪ heartbeat
//! timeout, Storm never recovers) is scale-free.
//!
//! `exp_fig10 --trace [rate]` instead runs the same word-count topology
//! fault-free with acking and the end-to-end tuple tracer enabled
//! (sampling 1 in `rate`, default 16) and prints the per-hop latency
//! breakdown.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use typhoon_bench::harness::{print_aggregate_timeline, print_hop_table};
use typhoon_bench::workloads::{word_count_topology, SentenceSpout, SplitBolt};
use typhoon_controller::apps::FaultDetector;
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_metrics::RateMeter;
use typhoon_model::{Bolt, ComponentRegistry, Emitter};
use typhoon_storm::{StormCluster, StormConfig};
use typhoon_tuple::Tuple;

const TOTAL_SECS: usize = 24;
const FAULT_AT: Duration = Duration::from_secs(8);
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(5);
const INPUT_RATE: u32 = 20_000; // sentences/sec; ~6 words each (input-bound on purpose)

/// A split bolt that is healthy unless created while the poison flag is
/// up — modelling the paper's persistently faulty split logic: every
/// restart after the fault produces another crashing worker.
struct PoisonableSplit {
    poisoned: bool,
    inner: SplitBolt,
}

impl Bolt for PoisonableSplit {
    fn prepare(&mut self) {
        if self.poisoned {
            panic!("simulated NullPointerException in split worker");
        }
    }

    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        self.inner.execute(input, out);
    }
}

fn register(reg: &mut ComponentRegistry, poison: Arc<AtomicBool>) {
    reg.register_spout("sentence-spout", || SentenceSpout::new(32));
    let p = poison.clone();
    reg.register_bolt("split", move || PoisonableSplit {
        poisoned: p.load(Ordering::Acquire),
        inner: SplitBolt,
    });
    reg.register_bolt("count", typhoon_bench::workloads::CountBolt::new);
}

fn run_storm(poison: Arc<AtomicBool>) -> Vec<RateMeter> {
    let mut reg = ComponentRegistry::new();
    register(&mut reg, poison.clone());
    let config = StormConfig {
        hosts: 3,
        heartbeat_timeout: HEARTBEAT_TIMEOUT,
        monitor_interval: Duration::from_millis(100),
        ..StormConfig::local(3)
    };
    let cluster = StormCluster::new(config, reg);
    let topo = {
        // Drop the aggregator: Fig. 10 measures the count workers.
        word_count_topology(2, 4)
    };
    let handle = cluster.submit(topo).expect("submit");
    let spout = handle.tasks_of("input")[0];
    handle.set_input_rate(spout, Some(INPUT_RATE));
    let meters: Vec<RateMeter> = handle
        .tasks_of("count")
        .into_iter()
        .filter_map(|t| handle.meter(t))
        .collect();
    let victim = handle.tasks_of("split")[0];
    std::thread::sleep(FAULT_AT);
    // The fault: poison future instances, then kill the running worker.
    poison.store(true, Ordering::Release);
    handle.crash_task(victim);
    std::thread::sleep(Duration::from_secs(TOTAL_SECS as u64) - FAULT_AT);
    let restarts = handle.restarts(victim);
    println!("# storm: split worker restarted {restarts} times (each replacement faulty)");
    cluster.shutdown();
    meters
}

fn run_typhoon(poison: Arc<AtomicBool>) -> Vec<RateMeter> {
    let mut reg = ComponentRegistry::new();
    register(&mut reg, poison);
    let mut config = TyphoonConfig::new(3).with_batch_size(100);
    config.slots_per_host = 4;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    cluster.controller().add_app(Box::new(FaultDetector::new()));
    let handle = cluster.submit(word_count_topology(2, 4)).expect("submit");
    let spout = handle.tasks_of("input")[0];
    cluster.controller().send_control(
        handle.app(),
        spout,
        &typhoon_controller::ControlTuple::InputRate {
            tuples_per_sec: INPUT_RATE,
        },
    );
    let meters: Vec<RateMeter> = handle
        .tasks_of("count")
        .into_iter()
        .filter_map(|t| handle.worker(t).map(|w| w.meter))
        .collect();
    let victim = handle.tasks_of("split")[0];
    std::thread::sleep(FAULT_AT);
    handle.crash_task(victim).expect("crash");
    std::thread::sleep(Duration::from_secs(TOTAL_SECS as u64) - FAULT_AT);
    println!("# typhoon: fault detector rerouted predecessors on PortStatus delete");
    cluster.shutdown();
    meters
}

fn fig10_trace(rate: u32) {
    println!("== exp_fig10 --trace: word-count per-hop latency breakdown (1/{rate} sampled) ==");
    let mut reg = ComponentRegistry::new();
    register(&mut reg, Arc::new(AtomicBool::new(false)));
    let mut config = TyphoonConfig::new(3)
        .with_batch_size(100)
        .with_acking(Duration::from_secs(10), 2048)
        .with_trace(rate);
    config.slots_per_host = 4;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    let handle = cluster.submit(word_count_topology(2, 4)).expect("submit");
    let spout = handle.tasks_of("input")[0];
    cluster.controller().send_control(
        handle.app(),
        spout,
        &typhoon_controller::ControlTuple::InputRate {
            tuples_per_sec: INPUT_RATE,
        },
    );
    std::thread::sleep(Duration::from_secs(4));
    if let Some(tracer) = cluster.tracer() {
        print_hop_table("fig10/word-count", tracer);
    }
    cluster.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let rate = args
            .get(pos + 1)
            .and_then(|r| r.parse::<u32>().ok())
            .unwrap_or(16);
        fig10_trace(rate);
        return;
    }
    println!(
        "== Fig. 10: fault evaluation (split worker dies at t={}s) ==",
        FAULT_AT.as_secs()
    );
    println!(
        "# storm heartbeat timeout: {}s (paper: 30s, compressed)",
        HEARTBEAT_TIMEOUT.as_secs()
    );
    let meters = run_storm(Arc::new(AtomicBool::new(false)));
    print_aggregate_timeline("fig10a/storm-count-workers", &meters, TOTAL_SECS);
    let meters = run_typhoon(Arc::new(AtomicBool::new(false)));
    print_aggregate_timeline("fig10b/typhoon-count-workers", &meters, TOTAL_SECS);
    println!("# expected shape: storm drops to ~half at the fault and stays there;");
    println!("# typhoon dips briefly and returns to the pre-fault aggregate.");
}
