//! Experiment: Fig. 10 — fault detection and recovery.
//!
//! The word-count topology (1 source, 2 split, 4 count) runs on three
//! hosts; at a known instant one split worker dies.
//!
//! * **Storm** (Fig. 10(a)): the death is only visible as a missing
//!   heartbeat. The supervisor restarts the worker, but the replacement is
//!   equally faulty (the paper injects a `NullPointerException` in the
//!   split logic), so the aggregate count-worker throughput drops to half
//!   and stays there.
//! * **Typhoon** (Fig. 10(b)): the switch reports an unexpected
//!   `PortStatus` delete; the fault-detector app immediately rewrites the
//!   predecessors' routing toward the surviving split worker, so aggregate
//!   throughput recovers at once (the survivor absorbs double load).
//!
//! Timeline compressed: the paper's 70 s / 30 s-heartbeat becomes
//! 24 s / 5 s-heartbeat; the ordering (Typhoon recovers ≪ heartbeat
//! timeout, Storm never recovers) is scale-free.
//!
//! `exp_fig10 --trace [rate]` instead runs the same word-count topology
//! fault-free with acking and the end-to-end tuple tracer enabled
//! (sampling 1 in `rate`, default 16) and prints the per-hop latency
//! breakdown.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use typhoon_bench::harness::{
    aggregate_timeline_points, print_aggregate_timeline, print_hop_table, window_mean, BenchOpts,
};
use typhoon_bench::report::{Direction, Report};
use typhoon_bench::workloads::{word_count_topology, SentenceSpout, SplitBolt};
use typhoon_controller::apps::FaultDetector;
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_metrics::RateMeter;
use typhoon_model::{Bolt, ComponentRegistry, Emitter};
use typhoon_storm::{StormCluster, StormConfig};
use typhoon_tuple::Tuple;

const INPUT_RATE: u32 = 20_000; // sentences/sec; ~6 words each (input-bound on purpose)

/// Timeline parameters, compressed by `--short` (the paper's 70 s /
/// 30 s-heartbeat is already compressed to 24 s / 5 s in full mode; the
/// ordering — Typhoon recovers ≪ heartbeat timeout, Storm never recovers
/// — is scale-free).
struct Cfg {
    total_secs: usize,
    fault_at: Duration,
    heartbeat: Duration,
}

impl Cfg {
    fn new(opts: &BenchOpts) -> Self {
        Cfg {
            total_secs: opts.pick(24, 10),
            fault_at: Duration::from_secs(opts.pick(8, 4)),
            heartbeat: Duration::from_secs(opts.pick(5, 2)),
        }
    }

    /// Windows of the pre-fault steady state (skipping the ramp-up
    /// window) and of the settled post-fault state (skipping two windows
    /// of recovery transient).
    fn pre_windows(&self) -> (usize, usize) {
        (1, self.fault_at.as_secs() as usize)
    }

    fn post_windows(&self) -> (usize, usize) {
        (self.fault_at.as_secs() as usize + 2, self.total_secs)
    }
}

/// A split bolt that is healthy unless created while the poison flag is
/// up — modelling the paper's persistently faulty split logic: every
/// restart after the fault produces another crashing worker.
struct PoisonableSplit {
    poisoned: bool,
    inner: SplitBolt,
}

impl Bolt for PoisonableSplit {
    fn prepare(&mut self) {
        if self.poisoned {
            panic!("simulated NullPointerException in split worker");
        }
    }

    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        self.inner.execute(input, out);
    }
}

fn register(reg: &mut ComponentRegistry, poison: Arc<AtomicBool>) {
    reg.register_spout("sentence-spout", || SentenceSpout::new(32));
    let p = poison.clone();
    reg.register_bolt("split", move || PoisonableSplit {
        poisoned: p.load(Ordering::Acquire),
        inner: SplitBolt,
    });
    reg.register_bolt("count", typhoon_bench::workloads::CountBolt::new);
}

fn run_storm(cfg: &Cfg, poison: Arc<AtomicBool>) -> Vec<RateMeter> {
    let mut reg = ComponentRegistry::new();
    register(&mut reg, poison.clone());
    let config = StormConfig {
        hosts: 3,
        heartbeat_timeout: cfg.heartbeat,
        monitor_interval: Duration::from_millis(100),
        ..StormConfig::local(3)
    };
    let cluster = StormCluster::new(config, reg);
    let topo = {
        // Drop the aggregator: Fig. 10 measures the count workers.
        word_count_topology(2, 4)
    };
    let handle = cluster.submit(topo).expect("submit");
    let spout = handle.tasks_of("input")[0];
    handle.set_input_rate(spout, Some(INPUT_RATE));
    let meters: Vec<RateMeter> = handle
        .tasks_of("count")
        .into_iter()
        .filter_map(|t| handle.meter(t))
        .collect();
    let victim = handle.tasks_of("split")[0];
    std::thread::sleep(cfg.fault_at);
    // The fault: poison future instances, then kill the running worker.
    poison.store(true, Ordering::Release);
    handle.crash_task(victim);
    std::thread::sleep(Duration::from_secs(cfg.total_secs as u64) - cfg.fault_at);
    let restarts = handle.restarts(victim);
    println!("# storm: split worker restarted {restarts} times (each replacement faulty)");
    cluster.shutdown();
    meters
}

fn run_typhoon(cfg: &Cfg, poison: Arc<AtomicBool>) -> Vec<RateMeter> {
    let mut reg = ComponentRegistry::new();
    register(&mut reg, poison);
    let mut config = TyphoonConfig::new(3).with_batch_size(100);
    config.slots_per_host = 4;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    cluster.controller().add_app(Box::new(FaultDetector::new()));
    let handle = cluster.submit(word_count_topology(2, 4)).expect("submit");
    let spout = handle.tasks_of("input")[0];
    cluster.controller().send_control(
        handle.app(),
        spout,
        &typhoon_controller::ControlTuple::InputRate {
            tuples_per_sec: INPUT_RATE,
        },
    );
    let meters: Vec<RateMeter> = handle
        .tasks_of("count")
        .into_iter()
        .filter_map(|t| handle.worker(t).map(|w| w.meter))
        .collect();
    let victim = handle.tasks_of("split")[0];
    std::thread::sleep(cfg.fault_at);
    handle.crash_task(victim).expect("crash");
    std::thread::sleep(Duration::from_secs(cfg.total_secs as u64) - cfg.fault_at);
    println!("# typhoon: fault detector rerouted predecessors on PortStatus delete");
    cluster.shutdown();
    meters
}

fn fig10_trace(rate: u32) {
    println!("== exp_fig10 --trace: word-count per-hop latency breakdown (1/{rate} sampled) ==");
    let mut reg = ComponentRegistry::new();
    register(&mut reg, Arc::new(AtomicBool::new(false)));
    let mut config = TyphoonConfig::new(3)
        .with_batch_size(100)
        .with_acking(Duration::from_secs(10), 2048)
        .with_trace(rate);
    config.slots_per_host = 4;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    let handle = cluster.submit(word_count_topology(2, 4)).expect("submit");
    let spout = handle.tasks_of("input")[0];
    cluster.controller().send_control(
        handle.app(),
        spout,
        &typhoon_controller::ControlTuple::InputRate {
            tuples_per_sec: INPUT_RATE,
        },
    );
    std::thread::sleep(Duration::from_secs(4));
    if let Some(tracer) = cluster.tracer() {
        print_hop_table("fig10/word-count", tracer);
    }
    cluster.shutdown();
}

fn main() {
    let opts = BenchOpts::from_env();
    let cfg = Cfg::new(&opts);
    if let Some(pos) = opts.rest.iter().position(|a| a == "--trace") {
        let rate = opts
            .rest
            .get(pos + 1)
            .and_then(|r| r.parse::<u32>().ok())
            .unwrap_or(16);
        fig10_trace(rate);
        return;
    }
    println!(
        "== Fig. 10: fault evaluation (split worker dies at t={}s) ==",
        cfg.fault_at.as_secs()
    );
    println!(
        "# storm heartbeat timeout: {}s (paper: 30s, compressed)",
        cfg.heartbeat.as_secs()
    );
    let mut report = Report::new("fig10", "fault detection and recovery", opts.mode());
    let (pre_from, pre_to) = cfg.pre_windows();
    let (post_from, post_to) = cfg.post_windows();

    let meters = run_storm(&cfg, Arc::new(AtomicBool::new(false)));
    print_aggregate_timeline("fig10a/storm-count-workers", &meters, cfg.total_secs);
    let storm_points = aggregate_timeline_points(&meters, cfg.total_secs);
    let storm_pre = window_mean(&storm_points, pre_from, pre_to);
    let storm_post = window_mean(&storm_points, post_from, post_to);
    report.push_series("fig10a/storm-count-workers", "tuples/sec", storm_points);

    let meters = run_typhoon(&cfg, Arc::new(AtomicBool::new(false)));
    print_aggregate_timeline("fig10b/typhoon-count-workers", &meters, cfg.total_secs);
    let ty_points = aggregate_timeline_points(&meters, cfg.total_secs);
    let ty_pre = window_mean(&ty_points, pre_from, pre_to);
    let ty_post = window_mean(&ty_points, post_from, post_to);
    report.push_series("fig10b/typhoon-count-workers", "tuples/sec", ty_points);

    // The figure's claim: Typhoon's aggregate returns to the pre-fault
    // level (survivor absorbs double load), Storm's stays depressed.
    let recovered = if ty_pre > 0.0 { ty_post / ty_pre } else { 0.0 };
    report.metric(
        "recovered_ratio.typhoon",
        recovered,
        "ratio",
        Direction::HigherIsBetter,
        0.4,
    );
    let storm_ratio = if storm_pre > 0.0 {
        storm_post / storm_pre
    } else {
        0.0
    };
    // Informational contrast: Storm must not silently learn to recover
    // here (that would mean the fault injection broke), so the ratio is
    // tracked lower-is-better with a loose tolerance.
    report.metric(
        "post_fault_ratio.storm",
        storm_ratio,
        "ratio",
        Direction::LowerIsBetter,
        1.0,
    );
    println!("# typhoon post/pre aggregate ratio: {recovered:.2} (storm: {storm_ratio:.2})");
    println!("# expected shape: storm drops to ~half at the fault and stays there;");
    println!("# typhoon dips briefly and returns to the pre-fault aggregate.");
    opts.emit(&report);
}
