//! Experiment: Fig. 12 + Table 5 — live debugging overhead.
//!
//! A source→sink topology runs for 30 s; live debugging is enabled from
//! t=10 s to t=20 s, mirroring the source's tuples to a debug worker.
//!
//! * **Storm**: mirroring happens at the application level — one extra
//!   serialization and send per tuple — so throughput drops significantly
//!   while debugging is active.
//! * **Typhoon**: the live-debugger app installs a switch-level mirror
//!   rule; the copy is a refcounted `Bytes` clone, so throughput is
//!   unaffected.
//!
//! `exp_fig12 table5` prints the qualitative comparison of Table 5.

use std::time::Duration;
use typhoon_bench::harness::{print_timeline, timeline_points, window_mean, BenchOpts};
use typhoon_bench::report::{Direction, Report};
use typhoon_bench::workloads::register_standard;
use typhoon_controller::apps::LiveDebugger;
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_metrics::RateMeter;
use typhoon_model::{ComponentRegistry, Fields, Grouping, LogicalTopology};
use typhoon_openflow::PortNo;
use typhoon_storm::{StormCluster, StormConfig};

const PAYLOAD: usize = 100;

/// Timeline parameters, compressed by `--short`: the before / during /
/// after phases shrink from 10 s each to 3 s each.
struct Cfg {
    total_secs: usize,
    debug_on: u64,
    debug_off: u64,
}

impl Cfg {
    fn new(opts: &BenchOpts) -> Self {
        Cfg {
            total_secs: opts.pick(30, 9),
            debug_on: opts.pick(10, 3),
            debug_off: opts.pick(20, 6),
        }
    }
}

/// Source → sink, plus a pre-provisioned debug worker (required by Storm;
/// Typhoon could add it dynamically but shares the topology for fairness).
fn debug_topology() -> LogicalTopology {
    LogicalTopology::builder("debuggable")
        .spout("source", "seq-spout", 1, Fields::new(["seq", "payload"]))
        .bolt("sink", "seq-sink", 1, Fields::new(["seq"]))
        .bolt("debug", "null-sink", 1, Fields::new(["seq"]))
        .edge("source", "sink", Grouping::Global)
        .build()
        .expect("valid")
}

/// Serializations per delivered tuple in the (before, during) phases —
/// the framework-attributable cost, independent of CPU sharing.
fn run_storm(cfg: &Cfg) -> (RateMeter, f64, f64) {
    let mut reg = ComponentRegistry::new();
    let _ = register_standard(&mut reg, PAYLOAD, 64);
    let cluster = StormCluster::new(StormConfig::local(1), reg);
    let handle = cluster.submit(debug_topology()).expect("submit");
    let src = handle.tasks_of("source")[0];
    let dbg = handle.tasks_of("debug")[0];
    let sink_meter = handle.meter(handle.tasks_of("sink")[0]).expect("meter");
    std::thread::sleep(Duration::from_secs(cfg.debug_on));
    let (ser0, _) = cluster.ser_stats().counts();
    let n0 = sink_meter.total();
    handle.enable_debug(src, dbg); // app-level mirroring starts
    std::thread::sleep(Duration::from_secs(cfg.debug_off - cfg.debug_on));
    let (ser1, _) = cluster.ser_stats().counts();
    let n1 = sink_meter.total();
    handle.disable_debug(src);
    std::thread::sleep(Duration::from_secs(cfg.total_secs as u64 - cfg.debug_off));
    cluster.shutdown();
    let before = ser0 as f64 / n0.max(1) as f64;
    let during = (ser1 - ser0) as f64 / (n1 - n0).max(1) as f64;
    (sink_meter, before, during)
}

fn run_typhoon(cfg: &Cfg) -> (RateMeter, f64, f64) {
    let mut reg = ComponentRegistry::new();
    let _ = register_standard(&mut reg, PAYLOAD, 64);
    let cluster =
        TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(100), reg).expect("cluster");
    let handle = cluster.submit(debug_topology()).expect("submit");
    let physical = handle.physical().expect("physical");
    let src = handle.tasks_of("source")[0];
    let sink = handle.tasks_of("sink")[0];
    let dbg = handle.tasks_of("debug")[0];
    let sink_meter = handle.worker(sink).expect("worker").meter;
    let port_of = |t| PortNo(physical.assignment(t).expect("task is placed").switch_port);
    std::thread::sleep(Duration::from_secs(cfg.debug_on));
    let (ser0, _) = cluster.ser_stats().counts();
    let n0 = sink_meter.total();
    // Switch-level mirroring: a data-plane rule copy, no app involvement.
    let mut debugger = LiveDebugger::new();
    debugger.mirror_task(
        &cluster.controller(),
        handle.app(),
        physical.assignment(src).expect("task is placed").host,
        src,
        port_of(src),
        &[(sink, port_of(sink))],
        port_of(dbg),
    );
    std::thread::sleep(Duration::from_secs(cfg.debug_off - cfg.debug_on));
    let (ser1, _) = cluster.ser_stats().counts();
    let n1 = sink_meter.total();
    debugger.unmirror(&cluster.controller());
    std::thread::sleep(Duration::from_secs(cfg.total_secs as u64 - cfg.debug_off));
    cluster.shutdown();
    let before = ser0 as f64 / n0.max(1) as f64;
    let during = (ser1 - ser0) as f64 / (n1 - n0).max(1) as f64;
    (sink_meter, before, during)
}

fn print_table5() {
    println!("== Table 5: Storm vs Typhoon live debugger ==");
    println!("{:<22} | {:<34} | {:<30}", "Property", "Storm", "Typhoon");
    println!("{}", "-".repeat(92));
    println!(
        "{:<22} | {:<34} | {:<30}",
        "Debug granularity", "entire topology / set of workers", "each worker"
    );
    println!(
        "{:<22} | {:<34} | {:<30}",
        "Resource requirement", "pre-provisioned memory + TCP conns", "memory allocated on demand"
    );
    println!(
        "{:<22} | {:<34} | {:<30}",
        "Dynamic provisioning", "no (predefined via config/API)", "yes (runtime flow rules)"
    );
    println!(
        "{:<22} | {:<34} | {:<30}",
        "Multiple serialization", "yes", "no"
    );
}

fn main() {
    let opts = BenchOpts::from_env();
    let cfg = Cfg::new(&opts);
    if opts.rest.first().map(String::as_str) == Some("table5") {
        print_table5();
        return;
    }
    println!(
        "== Fig. 12: live debugging overhead (debug ON t={}s..{}s) ==",
        cfg.debug_on, cfg.debug_off
    );
    let mut report = Report::new("fig12", "live debugging overhead", opts.mode());
    // Per-phase throughput windows, skipping the first window of each
    // phase (ramp-up / mirror-rule installation transient).
    let before_win = (1, cfg.debug_on as usize);
    let during_win = (cfg.debug_on as usize + 1, cfg.debug_off as usize);
    let phase_ratio = |points: &[f64]| {
        let before = window_mean(points, before_win.0, before_win.1);
        let during = window_mean(points, during_win.0, during_win.1);
        if before > 0.0 {
            during / before
        } else {
            0.0
        }
    };

    let (storm, storm_before, storm_during) = run_storm(&cfg);
    print_timeline("fig12/storm-sink", &storm, 0, cfg.total_secs);
    println!(
        "# storm source serializations/tuple: before={storm_before:.2} during-debug={storm_during:.2}"
    );
    let storm_points = timeline_points(&storm, 0, cfg.total_secs);
    let storm_ratio = phase_ratio(&storm_points);
    report.push_series("fig12/storm-sink", "tuples/sec", storm_points);
    report.metric(
        "ser_per_tuple.storm.before",
        storm_before,
        "count",
        Direction::LowerIsBetter,
        0.25,
    );
    report.metric(
        "ser_per_tuple.storm.during_debug",
        storm_during,
        "count",
        Direction::LowerIsBetter,
        0.25,
    );
    // Informational: Storm's during/before ratio documents the drop; it
    // is not a property this repo defends, so the tolerance is loose.
    report.metric(
        "debug_overhead_ratio.storm",
        storm_ratio,
        "ratio",
        Direction::HigherIsBetter,
        0.9,
    );

    let (typhoon, ty_before, ty_during) = run_typhoon(&cfg);
    print_timeline("fig12/typhoon-sink", &typhoon, 0, cfg.total_secs);
    println!(
        "# typhoon source serializations/tuple: before={ty_before:.2} during-debug={ty_during:.2}"
    );
    let ty_points = timeline_points(&typhoon, 0, cfg.total_secs);
    let ty_ratio = phase_ratio(&ty_points);
    report.push_series("fig12/typhoon-sink", "tuples/sec", ty_points);
    // The mechanism claim: switch-level mirroring adds no serialization,
    // so the per-tuple counter stays ~1 while debugging.
    report.metric(
        "ser_per_tuple.typhoon.before",
        ty_before,
        "count",
        Direction::LowerIsBetter,
        0.25,
    );
    report.metric(
        "ser_per_tuple.typhoon.during_debug",
        ty_during,
        "count",
        Direction::LowerIsBetter,
        0.25,
    );
    // And throughput while debugging must hold near the before level.
    report.metric(
        "debug_overhead_ratio.typhoon",
        ty_ratio,
        "ratio",
        Direction::HigherIsBetter,
        0.4,
    );
    println!("# expected shape: storm throughput drops while debugging is on");
    println!("# (extra app-level serialization); typhoon is unaffected.");
    print_table5();
    opts.emit(&report);
}
