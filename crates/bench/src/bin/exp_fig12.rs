//! Experiment: Fig. 12 + Table 5 — live debugging overhead.
//!
//! A source→sink topology runs for 30 s; live debugging is enabled from
//! t=10 s to t=20 s, mirroring the source's tuples to a debug worker.
//!
//! * **Storm**: mirroring happens at the application level — one extra
//!   serialization and send per tuple — so throughput drops significantly
//!   while debugging is active.
//! * **Typhoon**: the live-debugger app installs a switch-level mirror
//!   rule; the copy is a refcounted `Bytes` clone, so throughput is
//!   unaffected.
//!
//! `exp_fig12 table5` prints the qualitative comparison of Table 5.

use std::time::Duration;
use typhoon_bench::harness::print_timeline;
use typhoon_bench::workloads::register_standard;
use typhoon_controller::apps::LiveDebugger;
use typhoon_core::{TyphoonCluster, TyphoonConfig};
use typhoon_metrics::RateMeter;
use typhoon_model::{ComponentRegistry, Fields, Grouping, LogicalTopology};
use typhoon_openflow::PortNo;
use typhoon_storm::{StormCluster, StormConfig};

const TOTAL_SECS: usize = 30;
const DEBUG_ON: u64 = 10;
const DEBUG_OFF: u64 = 20;
const PAYLOAD: usize = 100;

/// Source → sink, plus a pre-provisioned debug worker (required by Storm;
/// Typhoon could add it dynamically but shares the topology for fairness).
fn debug_topology() -> LogicalTopology {
    LogicalTopology::builder("debuggable")
        .spout("source", "seq-spout", 1, Fields::new(["seq", "payload"]))
        .bolt("sink", "seq-sink", 1, Fields::new(["seq"]))
        .bolt("debug", "null-sink", 1, Fields::new(["seq"]))
        .edge("source", "sink", Grouping::Global)
        .build()
        .expect("valid")
}

/// Serializations per delivered tuple in the (before, during) phases —
/// the framework-attributable cost, independent of CPU sharing.
fn run_storm() -> (RateMeter, f64, f64) {
    let mut reg = ComponentRegistry::new();
    let _ = register_standard(&mut reg, PAYLOAD, 64);
    let cluster = StormCluster::new(StormConfig::local(1), reg);
    let handle = cluster.submit(debug_topology()).expect("submit");
    let src = handle.tasks_of("source")[0];
    let dbg = handle.tasks_of("debug")[0];
    let sink_meter = handle.meter(handle.tasks_of("sink")[0]).expect("meter");
    std::thread::sleep(Duration::from_secs(DEBUG_ON));
    let (ser0, _) = cluster.ser_stats().counts();
    let n0 = sink_meter.total();
    handle.enable_debug(src, dbg); // app-level mirroring starts
    std::thread::sleep(Duration::from_secs(DEBUG_OFF - DEBUG_ON));
    let (ser1, _) = cluster.ser_stats().counts();
    let n1 = sink_meter.total();
    handle.disable_debug(src);
    std::thread::sleep(Duration::from_secs(TOTAL_SECS as u64 - DEBUG_OFF));
    cluster.shutdown();
    let before = ser0 as f64 / n0.max(1) as f64;
    let during = (ser1 - ser0) as f64 / (n1 - n0).max(1) as f64;
    (sink_meter, before, during)
}

fn run_typhoon() -> (RateMeter, f64, f64) {
    let mut reg = ComponentRegistry::new();
    let _ = register_standard(&mut reg, PAYLOAD, 64);
    let cluster =
        TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(100), reg).expect("cluster");
    let handle = cluster.submit(debug_topology()).expect("submit");
    let physical = handle.physical().expect("physical");
    let src = handle.tasks_of("source")[0];
    let sink = handle.tasks_of("sink")[0];
    let dbg = handle.tasks_of("debug")[0];
    let sink_meter = handle.worker(sink).expect("worker").meter;
    let port_of = |t| PortNo(physical.assignment(t).expect("task is placed").switch_port);
    std::thread::sleep(Duration::from_secs(DEBUG_ON));
    let (ser0, _) = cluster.ser_stats().counts();
    let n0 = sink_meter.total();
    // Switch-level mirroring: a data-plane rule copy, no app involvement.
    let mut debugger = LiveDebugger::new();
    debugger.mirror_task(
        cluster.controller(),
        handle.app(),
        physical.assignment(src).expect("task is placed").host,
        src,
        port_of(src),
        &[(sink, port_of(sink))],
        port_of(dbg),
    );
    std::thread::sleep(Duration::from_secs(DEBUG_OFF - DEBUG_ON));
    let (ser1, _) = cluster.ser_stats().counts();
    let n1 = sink_meter.total();
    debugger.unmirror(cluster.controller());
    std::thread::sleep(Duration::from_secs(TOTAL_SECS as u64 - DEBUG_OFF));
    cluster.shutdown();
    let before = ser0 as f64 / n0.max(1) as f64;
    let during = (ser1 - ser0) as f64 / (n1 - n0).max(1) as f64;
    (sink_meter, before, during)
}

fn print_table5() {
    println!("== Table 5: Storm vs Typhoon live debugger ==");
    println!("{:<22} | {:<34} | {:<30}", "Property", "Storm", "Typhoon");
    println!("{}", "-".repeat(92));
    println!(
        "{:<22} | {:<34} | {:<30}",
        "Debug granularity", "entire topology / set of workers", "each worker"
    );
    println!(
        "{:<22} | {:<34} | {:<30}",
        "Resource requirement", "pre-provisioned memory + TCP conns", "memory allocated on demand"
    );
    println!(
        "{:<22} | {:<34} | {:<30}",
        "Dynamic provisioning", "no (predefined via config/API)", "yes (runtime flow rules)"
    );
    println!(
        "{:<22} | {:<34} | {:<30}",
        "Multiple serialization", "yes", "no"
    );
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("table5") {
        print_table5();
        return;
    }
    println!("== Fig. 12: live debugging overhead (debug ON t={DEBUG_ON}s..{DEBUG_OFF}s) ==");
    let (storm, storm_before, storm_during) = run_storm();
    print_timeline("fig12/storm-sink", &storm, 0, TOTAL_SECS);
    println!(
        "# storm source serializations/tuple: before={storm_before:.2} during-debug={storm_during:.2}"
    );
    let (typhoon, ty_before, ty_during) = run_typhoon();
    print_timeline("fig12/typhoon-sink", &typhoon, 0, TOTAL_SECS);
    println!(
        "# typhoon source serializations/tuple: before={ty_before:.2} during-debug={ty_during:.2}"
    );
    println!("# expected shape: storm throughput drops while debugging is on");
    println!("# (extra app-level serialization); typhoon is unaffected.");
    print_table5();
}
