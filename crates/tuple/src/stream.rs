//! Stream and message identifiers.
//!
//! The paper's packet format (Fig. 5) carries a *stream ID* with every set of
//! tuples; data tuples and the control tuples of Table 2 share one tuple
//! format and are told apart purely by stream ID (§3.3.2). The acker design
//! (§6.1) additionally tags each spout tuple with a random 64-bit message ID
//! whose XOR-lineage tracks completion.

use std::fmt;

/// Identifies a logical stream within a topology.
///
/// IDs below [`StreamId::FIRST_USER`] are reserved for the framework; the
/// constants below mirror Table 2 of the paper plus the acker streams of
/// Storm's guaranteed-processing design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u16);

impl StreamId {
    /// The default data stream every component emits on unless it declares
    /// named streams.
    pub const DEFAULT: StreamId = StreamId(0);

    /// `ROUTING` control stream: updates a worker's routing state.
    pub const CTRL_ROUTING: StreamId = StreamId(1);
    /// `SIGNAL` control stream: flush in-memory caches of stateful workers.
    pub const CTRL_SIGNAL: StreamId = StreamId(2);
    /// `METRIC_REQ` control stream: controller asks a worker for stats.
    pub const CTRL_METRIC_REQ: StreamId = StreamId(3);
    /// `METRIC_RESP` control stream: worker responds with its stats.
    pub const CTRL_METRIC_RESP: StreamId = StreamId(4);
    /// `INPUT_RATE` control stream: throttle a worker's input processing.
    pub const CTRL_INPUT_RATE: StreamId = StreamId(5);
    /// `ACTIVATE` control stream: unthrottle the first workers of a topology.
    pub const CTRL_ACTIVATE: StreamId = StreamId(6);
    /// `DEACTIVATE` control stream: throttle the first workers of a topology.
    pub const CTRL_DEACTIVATE: StreamId = StreamId(7);
    /// `BATCH_SIZE` control stream: adjust the I/O layer batch size.
    pub const CTRL_BATCH_SIZE: StreamId = StreamId(8);

    /// Ack stream from downstream workers to the acker.
    pub const ACK: StreamId = StreamId(9);
    /// Completion/fail notifications from the acker back to a spout.
    pub const ACK_RESULT: StreamId = StreamId(10);
    /// Stream carrying mirrored tuples to a live-debug worker.
    pub const DEBUG_MIRROR: StreamId = StreamId(11);
    /// `REPLAY` control stream: the recovery manager tells a spout to
    /// immediately fail-and-replay every pending root (crash recovery,
    /// §4 Fig. 10 — replay must not wait out the ack timeout).
    pub const CTRL_REPLAY: StreamId = StreamId(12);
    /// `RESTATE` control stream: the recovery manager tells a surviving
    /// stateful bolt to re-emit its snapshot downstream. Emissions made
    /// toward a task that died were lost with it, and the dedup ledger
    /// (correctly) refuses to re-fold the replays that would regenerate
    /// them — the snapshot re-emission re-converges latest-wins consumers.
    pub const CTRL_RESTATE: StreamId = StreamId(13);

    /// First stream ID available to applications.
    pub const FIRST_USER: StreamId = StreamId(16);

    /// True for the framework-reserved control streams (Table 2 plus the
    /// recovery extension).
    pub fn is_control(self) -> bool {
        (Self::CTRL_ROUTING.0..=Self::CTRL_BATCH_SIZE.0).contains(&self.0)
            || self == Self::CTRL_REPLAY
            || self == Self::CTRL_RESTATE
    }

    /// True for acker coordination streams.
    pub fn is_ack(self) -> bool {
        self == Self::ACK || self == Self::ACK_RESULT
    }

    /// True for streams delivered to the application computation layer
    /// (data + debug mirror); control and ack streams are consumed by the
    /// framework layer (Fig. 4).
    pub fn is_data(self) -> bool {
        !self.is_control() && !self.is_ack()
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            StreamId::DEFAULT => write!(f, "default"),
            StreamId::CTRL_ROUTING => write!(f, "ctrl:routing"),
            StreamId::CTRL_SIGNAL => write!(f, "ctrl:signal"),
            StreamId::CTRL_METRIC_REQ => write!(f, "ctrl:metric_req"),
            StreamId::CTRL_METRIC_RESP => write!(f, "ctrl:metric_resp"),
            StreamId::CTRL_INPUT_RATE => write!(f, "ctrl:input_rate"),
            StreamId::CTRL_ACTIVATE => write!(f, "ctrl:activate"),
            StreamId::CTRL_DEACTIVATE => write!(f, "ctrl:deactivate"),
            StreamId::CTRL_BATCH_SIZE => write!(f, "ctrl:batch_size"),
            StreamId::ACK => write!(f, "ack"),
            StreamId::ACK_RESULT => write!(f, "ack:result"),
            StreamId::DEBUG_MIRROR => write!(f, "debug:mirror"),
            StreamId::CTRL_REPLAY => write!(f, "ctrl:replay"),
            StreamId::CTRL_RESTATE => write!(f, "ctrl:restate"),
            StreamId(n) => write!(f, "stream:{n}"),
        }
    }
}

/// Identity of a spout-rooted tuple tree for guaranteed processing.
///
/// A spout assigns each root tuple a random non-zero `root`; every downstream
/// anchor contributes a random `anchor` XORed into the acker's ledger. When
/// the ledger value returns to zero the tree is fully processed (the classic
/// Storm XOR trick reimplemented in `typhoon-storm`'s acker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MessageId {
    /// Identifies the tuple tree (assigned by the spout).
    pub root: u64,
    /// This edge's random anchor value.
    pub anchor: u64,
}

impl MessageId {
    /// A message ID meaning "unanchored": reliability tracking is off for
    /// this tuple.
    pub const NONE: MessageId = MessageId { root: 0, anchor: 0 };

    /// Bit mask of the *replay round* carried in a root's low byte.
    ///
    /// Spouts allocate roots with the round byte zeroed and bump it once
    /// per replay of the same logical tuple. The acker then sees each
    /// replay round as a fresh tuple tree (a half-acked tree from the dead
    /// round can never wedge the new one), while [`MessageId::base_root`]
    /// stays stable across rounds — which is the key stateful bolts dedup
    /// replayed tuples on after a crash restore.
    pub const ROOT_ROUND_MASK: u64 = 0xFF;

    /// Bit mask of the *emission position* stamped into an anchor's low
    /// 16 bits by the framework layer. For a deterministic bolt the n-th
    /// emission while processing a given input is the same tuple on every
    /// replay, so `(base_root, position)` identifies a tuple across replay
    /// rounds even though the anchor's random high bits differ.
    pub const ANCHOR_POSITION_MASK: u64 = 0xFFFF;

    /// The replay-stable identity of a root: the root with its round byte
    /// cleared.
    pub fn base_root(root: u64) -> u64 {
        root & !Self::ROOT_ROUND_MASK
    }

    /// The replay round of a root (0 = the original emission).
    pub fn replay_round(root: u64) -> u8 {
        (root & Self::ROOT_ROUND_MASK) as u8
    }

    /// The next replay round of `root`: same base, round byte bumped
    /// (wrapping — by round 256 the round-0 acker entry is long expired).
    pub fn next_round(root: u64) -> u64 {
        Self::base_root(root) | ((root + 1) & Self::ROOT_ROUND_MASK)
    }

    /// The emission position stamped into an anchor's low bits.
    pub fn anchor_position(anchor: u64) -> u16 {
        (anchor & Self::ANCHOR_POSITION_MASK) as u16
    }

    /// True when the tuple participates in guaranteed processing.
    pub fn is_anchored(self) -> bool {
        self.root != 0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_anchored() {
            write!(f, "{:016x}/{:016x}", self.root, self.anchor)
        } else {
            write!(f, "unanchored")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_stream_classification() {
        assert!(StreamId::CTRL_ROUTING.is_control());
        assert!(StreamId::CTRL_BATCH_SIZE.is_control());
        assert!(StreamId::CTRL_REPLAY.is_control());
        assert!(StreamId::CTRL_RESTATE.is_control());
        assert!(!StreamId::DEFAULT.is_control());
        assert!(!StreamId::ACK.is_control());
        assert!(!StreamId::FIRST_USER.is_control());
    }

    #[test]
    fn ack_stream_classification() {
        assert!(StreamId::ACK.is_ack());
        assert!(StreamId::ACK_RESULT.is_ack());
        assert!(!StreamId::CTRL_SIGNAL.is_ack());
    }

    #[test]
    fn data_streams_reach_the_application_layer() {
        assert!(StreamId::DEFAULT.is_data());
        assert!(StreamId::DEBUG_MIRROR.is_data());
        assert!(StreamId::FIRST_USER.is_data());
        assert!(!StreamId::CTRL_ROUTING.is_data());
        assert!(!StreamId::ACK.is_data());
    }

    #[test]
    fn display_names() {
        assert_eq!(StreamId::CTRL_SIGNAL.to_string(), "ctrl:signal");
        assert_eq!(StreamId::CTRL_REPLAY.to_string(), "ctrl:replay");
        assert_eq!(StreamId(99).to_string(), "stream:99");
    }

    #[test]
    fn unanchored_message_id() {
        assert!(!MessageId::NONE.is_anchored());
        assert!(MessageId { root: 1, anchor: 2 }.is_anchored());
        assert_eq!(MessageId::NONE.to_string(), "unanchored");
    }

    #[test]
    fn replay_rounds_share_a_base_root() {
        let root = 0xDEAD_BEEF_0000_4200u64;
        assert_eq!(MessageId::replay_round(root), 0);
        let r1 = MessageId::next_round(root);
        let r2 = MessageId::next_round(r1);
        assert_eq!(MessageId::replay_round(r1), 1);
        assert_eq!(MessageId::replay_round(r2), 2);
        assert_ne!(root, r1);
        assert_ne!(r1, r2);
        assert_eq!(MessageId::base_root(root), MessageId::base_root(r1));
        assert_eq!(MessageId::base_root(root), MessageId::base_root(r2));
    }

    #[test]
    fn round_byte_wraps_without_touching_the_base() {
        let root = 0xAAAA_0000_0000_00FFu64;
        let next = MessageId::next_round(root);
        assert_eq!(MessageId::replay_round(next), 0);
        assert_eq!(MessageId::base_root(next), MessageId::base_root(root));
    }

    #[test]
    fn anchor_position_reads_low_bits() {
        assert_eq!(MessageId::anchor_position(0xFFFF_FFFF_FFFF_0042), 0x42);
        assert_eq!(MessageId::anchor_position(0x1234), 0x1234);
    }
}
