//! # typhoon-tuple — data tuple model and wire serialization
//!
//! This crate implements the data model that flows through every layer of the
//! Typhoon reproduction: dynamically-typed [`Value`]s grouped into [`Tuple`]s,
//! named [`Fields`] schemas used by key-based routing, [`StreamId`]s that
//! separate data streams from the control streams of Table 2 in the paper,
//! and a hand-rolled, *metered* binary serializer ([`ser`]).
//!
//! ## Why a hand-rolled serializer?
//!
//! The central performance claim of the Typhoon paper (CoNEXT '17, §3.3.1 and
//! Fig. 9) is that offloading one-to-many routing to the SDN data plane
//! removes *per-destination serialization*. For the reproduction to be
//! honest, serialization must be a real, observable CPU cost — not something
//! a clever library elides. [`ser::encode_tuple`] therefore walks and
//! encodes every value each time it is called, and a process-wide
//! [`ser::SerStats`] counter records exactly how many serializations each
//! framework performed, so tests can assert e.g. "Storm serialized N×fanout
//! times, Typhoon serialized N times".
//!
//! ## Layout
//!
//! | module | contents |
//! |---|---|
//! | [`value`] | [`Value`] — the dynamically typed cell |
//! | [`fields`] | [`Fields`] — named schema used for key extraction |
//! | [`mod@tuple`] | [`Tuple`] — values + routing/ack metadata |
//! | [`stream`] | [`StreamId`], [`MessageId`], well-known streams |
//! | [`ser`] | length-delimited binary wire format + meters |

#![warn(missing_docs)]

pub mod fields;
pub mod ser;
pub mod stream;
pub mod tuple;
pub mod value;

pub use fields::Fields;
pub use stream::{MessageId, StreamId};
pub use tuple::{Tuple, TupleMeta};
pub use value::Value;

/// Errors produced while encoding or decoding tuples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleError {
    /// The input buffer ended before a complete value could be decoded.
    Truncated {
        /// What was being decoded when the buffer ran out.
        context: &'static str,
    },
    /// An unknown type tag was found in the wire stream.
    BadTag(u8),
    /// A declared length exceeds the remaining buffer or a sanity bound.
    BadLength {
        /// Declared length.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A string field did not contain valid UTF-8.
    BadUtf8,
    /// A field name was looked up that does not exist in the schema.
    UnknownField(String),
}

impl std::fmt::Display for TupleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TupleError::Truncated { context } => {
                write!(f, "buffer truncated while decoding {context}")
            }
            TupleError::BadTag(t) => write!(f, "unknown value type tag 0x{t:02x}"),
            TupleError::BadLength {
                declared,
                available,
            } => write!(
                f,
                "declared length {declared} exceeds available {available} bytes"
            ),
            TupleError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            TupleError::UnknownField(name) => write!(f, "unknown field {name:?}"),
        }
    }
}

impl std::error::Error for TupleError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TupleError>;
