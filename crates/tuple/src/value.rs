//! Dynamically typed tuple cells.
//!
//! Stream applications in the paper's prototype exchange Java objects; the
//! Rust reproduction models them as a small closed set of variants that covers
//! every workload in the evaluation (word count, Yahoo ad analytics, sequence
//! probes) while remaining cheaply hashable for key-based routing.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A single dynamically-typed cell in a [`crate::Tuple`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (e.g. an optional projected field).
    Nil,
    /// Boolean flag.
    Bool(bool),
    /// Signed 64-bit integer. Counters, sequence numbers, timestamps.
    Int(i64),
    /// 64-bit float. Rates, scores.
    Float(f64),
    /// UTF-8 string. Words, event types, campaign ids.
    Str(String),
    /// Opaque byte payload (e.g. pre-encoded JSON events from the MQ).
    Blob(Vec<u8>),
    /// Ordered list of values (e.g. top-N rankings).
    List(Vec<Value>),
}

impl Value {
    /// A short, stable name of the variant; used in error messages and the
    /// live debugger's display format.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Blob(_) => "blob",
            Value::List(_) => "list",
        }
    }

    /// Returns the contained integer, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained float, if this is a [`Value::Float`].
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained string slice, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the contained byte slice, if this is a [`Value::Blob`].
    pub fn as_blob(&self) -> Option<&[u8]> {
        match self {
            Value::Blob(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the contained list, if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes, used by the memory-capped worker
    /// queues in the auto-scaler experiment (Fig. 11) to model
    /// `OutOfMemoryError`.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::Nil => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => 24 + s.len(),
            Value::Blob(b) => 24 + b.len(),
            Value::List(l) => 24 + l.iter().map(Value::approx_size).sum::<usize>(),
        }
    }
}

/// Values hash by content so that key-based routing (`hash(key) % numNextHops`
/// in Listing 1 of the paper) is stable across workers and reconfigurations.
///
/// Floats hash by their bit pattern; `NaN` therefore hashes consistently even
/// though it never compares equal.
impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Value::Nil => {}
            Value::Bool(v) => v.hash(state),
            Value::Int(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(v) => v.hash(state),
            Value::Blob(v) => v.hash(state),
            Value::List(v) => v.hash(state),
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Blob(v) => write!(f, "blob[{}]", v.len()),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Blob(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Blob(vec![1, 2]).as_blob(), Some(&[1u8, 2][..]));
        let list = Value::List(vec![Value::Int(1)]);
        assert_eq!(list.as_list().unwrap().len(), 1);
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::Str("campaign-42".into());
        let b = Value::Str("campaign-42".into());
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn different_variants_with_same_bits_hash_differently() {
        // Int(1) and Bool(true) must not collide just because both are "1".
        assert_ne!(hash_of(&Value::Int(1)), hash_of(&Value::Bool(true)));
    }

    #[test]
    fn nan_hashes_consistently() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn approx_size_counts_nested_content() {
        let v = Value::List(vec![Value::Str("abcd".into()), Value::Int(1)]);
        assert!(v.approx_size() > 4 + 8);
    }

    #[test]
    fn display_is_compact() {
        let v = Value::List(vec![Value::Int(1), Value::Str("a".into())]);
        assert_eq!(v.to_string(), "[1, \"a\"]");
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(Value::Nil.type_name(), "nil");
        assert_eq!(Value::List(vec![]).type_name(), "list");
    }
}
