//! Binary wire format for tuples, with serialization metering.
//!
//! ## Format
//!
//! All integers are little-endian.
//!
//! ```text
//! tuple   := src_task:u32 stream:u16 root:u64 anchor:u64 trace:u64 nvalues:u16 value*
//! value   := tag:u8 payload
//! payload := Nil            -> (empty)
//!            Bool           -> u8 (0|1)
//!            Int            -> i64
//!            Float          -> f64 bits
//!            Str | Blob     -> len:u32 bytes
//!            List           -> count:u16 value*
//! ```
//!
//! ## Metering
//!
//! Every call to [`encode_tuple`] / [`decode_tuple`] increments the passed
//! [`SerStats`]. The Storm baseline serializes once **per destination** for
//! one-to-many routing while Typhoon serializes once per tuple; the
//! evaluation harness reads these counters to demonstrate that gap directly
//! (Fig. 9 of the paper), independent of wall-clock noise.

use crate::tuple::TaskId;
use crate::{MessageId, Result, StreamId, Tuple, TupleError, TupleMeta, Value};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on any single declared length, to stop corrupted frames from
/// driving huge allocations (robustness-first, per the smoltcp guide).
const MAX_LEN: usize = 64 * 1024 * 1024;

/// Counters tracking serialization work performed by one framework instance.
#[derive(Debug, Default)]
pub struct SerStats {
    /// Number of tuple serializations performed.
    pub serializations: AtomicU64,
    /// Number of tuple deserializations performed.
    pub deserializations: AtomicU64,
    /// Total bytes produced by serialization.
    pub bytes_out: AtomicU64,
    /// Total bytes consumed by deserialization.
    pub bytes_in: AtomicU64,
}

impl SerStats {
    /// New zeroed counters behind an `Arc`, ready to share across workers.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of (serializations, deserializations).
    pub fn counts(&self) -> (u64, u64) {
        (
            self.serializations.load(Ordering::Relaxed),
            self.deserializations.load(Ordering::Relaxed),
        )
    }

    /// Reset all counters to zero (between experiment phases).
    pub fn reset(&self) {
        self.serializations.store(0, Ordering::Relaxed);
        self.deserializations.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
        self.bytes_in.store(0, Ordering::Relaxed);
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked cursor over an input buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(TupleError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, c: &'static str) -> Result<u8> {
        Ok(self.take(1, c)?[0])
    }
    fn u16(&mut self, c: &'static str) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2, c)?.try_into().unwrap()))
    }
    fn u32(&mut self, c: &'static str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, c)?.try_into().unwrap()))
    }
    fn u64(&mut self, c: &'static str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, c)?.try_into().unwrap()))
    }

    fn len_checked(&mut self, c: &'static str) -> Result<usize> {
        let declared = self.u32(c)? as usize;
        let available = self.buf.len() - self.pos;
        if declared > available || declared > MAX_LEN {
            return Err(TupleError::BadLength {
                declared,
                available,
            });
        }
        Ok(declared)
    }
}

const TAG_NIL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BLOB: u8 = 5;
const TAG_LIST: u8 = 6;

fn encode_value(v: &Value, buf: &mut Vec<u8>) {
    match v {
        Value::Nil => buf.push(TAG_NIL),
        Value::Bool(b) => {
            buf.push(TAG_BOOL);
            buf.push(*b as u8);
        }
        Value::Int(i) => {
            buf.push(TAG_INT);
            put_u64(buf, *i as u64);
        }
        Value::Float(x) => {
            buf.push(TAG_FLOAT);
            put_u64(buf, x.to_bits());
        }
        Value::Str(s) => {
            buf.push(TAG_STR);
            put_u32(buf, s.len() as u32);
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Blob(b) => {
            buf.push(TAG_BLOB);
            put_u32(buf, b.len() as u32);
            buf.extend_from_slice(b);
        }
        Value::List(items) => {
            buf.push(TAG_LIST);
            put_u16(buf, items.len() as u16);
            for item in items {
                encode_value(item, buf);
            }
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8("value tag")? {
        TAG_NIL => Ok(Value::Nil),
        TAG_BOOL => Ok(Value::Bool(r.u8("bool")? != 0)),
        TAG_INT => Ok(Value::Int(r.u64("int")? as i64)),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(r.u64("float")?))),
        TAG_STR => {
            let len = r.len_checked("str length")?;
            let bytes = r.take(len, "str bytes")?;
            let s = std::str::from_utf8(bytes).map_err(|_| TupleError::BadUtf8)?;
            Ok(Value::Str(s.to_owned()))
        }
        TAG_BLOB => {
            let len = r.len_checked("blob length")?;
            Ok(Value::Blob(r.take(len, "blob bytes")?.to_vec()))
        }
        TAG_LIST => {
            let n = r.u16("list count")? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Ok(Value::List(items))
        }
        t => Err(TupleError::BadTag(t)),
    }
}

/// Serializes a tuple into `buf`, returning the number of bytes written.
///
/// This performs real encoding work for every value on every call — the cost
/// the paper's baseline pays once *per destination*.
pub fn encode_tuple(t: &Tuple, buf: &mut Vec<u8>, stats: &SerStats) -> usize {
    let start = buf.len();
    put_u32(buf, t.meta.src_task.0);
    put_u16(buf, t.meta.stream.0);
    put_u64(buf, t.meta.message_id.root);
    put_u64(buf, t.meta.message_id.anchor);
    put_u64(buf, t.meta.trace);
    put_u16(buf, t.values.len() as u16);
    for v in &t.values {
        encode_value(v, buf);
    }
    let n = buf.len() - start;
    stats.serializations.fetch_add(1, Ordering::Relaxed);
    stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
    n
}

/// Serializes a tuple into a fresh byte vector.
pub fn encode_tuple_vec(t: &Tuple, stats: &SerStats) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32 + t.approx_size());
    encode_tuple(t, &mut buf, stats);
    buf
}

/// Encodes a run of tuples into **one** backing allocation, then hands out
/// refcounted [`Bytes`] views of each tuple's encoding.
///
/// The per-tuple path (`encode_tuple_vec` + `Bytes::from`) allocates a fresh
/// `Vec` per tuple; on the batched datapath those allocations dominate the
/// sub-µs budget. Here all tuples routed in one batch share a single buffer
/// and the frames carry zero-copy slices of it — the serialize→switch→
/// deserialize path never copies the payload again.
///
/// Metering is unchanged: each `push` counts exactly one serialization, so
/// the Fig. 9 per-destination accounting still holds.
#[derive(Debug, Default)]
pub struct BatchEncoder {
    buf: Vec<u8>,
    marks: Vec<usize>,
}

impl BatchEncoder {
    /// An empty encoder; the buffer grows to fit the batch and is reused
    /// across [`BatchEncoder::finish`] cycles only via its own capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `t` at the end of the shared buffer.
    pub fn push(&mut self, t: &Tuple, stats: &SerStats) {
        self.marks.push(self.buf.len());
        encode_tuple(t, &mut self.buf, stats);
    }

    /// Number of tuples encoded since the last `finish`.
    pub fn len(&self) -> usize {
        self.marks.len()
    }

    /// True when no tuples are pending.
    pub fn is_empty(&self) -> bool {
        self.marks.is_empty()
    }

    /// Freezes the shared buffer once and returns one zero-copy view per
    /// pushed tuple, in push order. Resets the encoder for the next batch.
    pub fn finish(&mut self) -> Vec<Bytes> {
        let blob = Bytes::from(std::mem::take(&mut self.buf));
        let mut out = Vec::with_capacity(self.marks.len());
        for (i, &start) in self.marks.iter().enumerate() {
            let end = self.marks.get(i + 1).copied().unwrap_or(blob.len());
            out.push(blob.slice(start..end));
        }
        self.marks.clear();
        out
    }
}

/// Deserializes one tuple from the front of `buf`, returning it and the
/// number of bytes consumed.
pub fn decode_tuple(buf: &[u8], stats: &SerStats) -> Result<(Tuple, usize)> {
    let mut r = Reader::new(buf);
    let src_task = TaskId(r.u32("src_task")?);
    let stream = StreamId(r.u16("stream")?);
    let root = r.u64("message root")?;
    let anchor = r.u64("message anchor")?;
    let trace = r.u64("trace id")?;
    let nvalues = r.u16("value count")? as usize;
    let mut values = Vec::with_capacity(nvalues.min(1024));
    for _ in 0..nvalues {
        values.push(decode_value(&mut r)?);
    }
    stats.deserializations.fetch_add(1, Ordering::Relaxed);
    stats.bytes_in.fetch_add(r.pos as u64, Ordering::Relaxed);
    Ok((
        Tuple {
            meta: TupleMeta {
                src_task,
                stream,
                message_id: MessageId { root, anchor },
                trace,
            },
            values,
        },
        r.pos,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: &Tuple) -> Tuple {
        let stats = SerStats::default();
        let buf = encode_tuple_vec(t, &stats);
        let (out, used) = decode_tuple(&buf, &stats).expect("decode");
        assert_eq!(used, buf.len(), "decode must consume the whole encoding");
        assert_eq!(stats.counts(), (1, 1));
        out
    }

    #[test]
    fn roundtrip_all_value_kinds() {
        let t = Tuple::on_stream(
            TaskId(42),
            StreamId::FIRST_USER,
            vec![
                Value::Nil,
                Value::Bool(true),
                Value::Int(-7),
                Value::Float(3.25),
                Value::Str("word".into()),
                Value::Blob(vec![0, 255, 1]),
                Value::List(vec![Value::Int(1), Value::Str("x".into())]),
            ],
        )
        .with_message_id(MessageId {
            root: 0xdead,
            anchor: 0xbeef,
        });
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn roundtrip_empty_tuple() {
        let t = Tuple::new(TaskId(0), vec![]);
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn truncated_buffer_is_an_error_not_a_panic() {
        let stats = SerStats::default();
        let t = Tuple::new(TaskId(1), vec![Value::Str("hello world".into())]);
        let buf = encode_tuple_vec(&t, &stats);
        for cut in 0..buf.len() {
            let r = decode_tuple(&buf[..cut], &stats);
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn bad_tag_is_reported() {
        let stats = SerStats::default();
        let mut buf = Vec::new();
        let t = Tuple::new(TaskId(1), vec![]);
        encode_tuple(&t, &mut buf, &stats);
        // Append a value with an invalid tag and patch the count.
        buf[30] = 1; // nvalues (little-endian u16 at offset 30)
        buf.push(0x7f);
        match decode_tuple(&buf, &stats) {
            Err(TupleError::BadTag(0x7f)) => {}
            other => panic!("expected BadTag, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected() {
        let stats = SerStats::default();
        let t = Tuple::new(TaskId(1), vec![Value::Str("abc".into())]);
        let mut buf = encode_tuple_vec(&t, &stats);
        // The str length field sits right after the tag; blow it up.
        let tag_pos = 32; // meta (30) + nvalues consumed; first value tag
        assert_eq!(buf[tag_pos], TAG_STR);
        buf[tag_pos + 1..tag_pos + 5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_tuple(&buf, &stats),
            Err(TupleError::BadLength { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let stats = SerStats::default();
        let t = Tuple::new(TaskId(1), vec![Value::Str("ab".into())]);
        let mut buf = encode_tuple_vec(&t, &stats);
        let len = buf.len();
        buf[len - 1] = 0xff; // corrupt the last string byte
        assert_eq!(decode_tuple(&buf, &stats).unwrap_err(), TupleError::BadUtf8);
    }

    #[test]
    fn stats_count_per_destination_serialization() {
        // Model of the Storm one-to-many cost: 4 destinations = 4 encodes.
        let stats = SerStats::default();
        let t = Tuple::new(TaskId(9), vec![Value::Int(5)]);
        for _ in 0..4 {
            let _ = encode_tuple_vec(&t, &stats);
        }
        assert_eq!(stats.counts().0, 4);
        stats.reset();
        assert_eq!(stats.counts(), (0, 0));
    }

    #[test]
    fn batch_encoder_shares_one_allocation_across_tuples() {
        let stats = SerStats::default();
        let tuples: Vec<Tuple> = (0..4)
            .map(|i| {
                Tuple::new(
                    TaskId(i),
                    vec![Value::Int(i as i64), Value::Str("w".into())],
                )
            })
            .collect();
        let mut enc = BatchEncoder::new();
        for t in &tuples {
            enc.push(t, &stats);
        }
        assert_eq!(enc.len(), 4);
        let blobs = enc.finish();
        assert!(enc.is_empty());
        assert_eq!(blobs.len(), 4);
        // One serialization metered per tuple, exactly as the per-tuple path.
        assert_eq!(stats.counts().0, 4);
        // All views alias one backing allocation (zero-copy slices).
        let base = blobs[0].as_ref().as_ptr() as usize;
        let mut expect = base;
        for (blob, t) in blobs.iter().zip(&tuples) {
            assert_eq!(blob.as_ref().as_ptr() as usize, expect);
            expect += blob.len();
            let (decoded, used) = decode_tuple(blob, &stats).expect("decode");
            assert_eq!(used, blob.len());
            assert_eq!(&decoded, t);
        }
    }

    #[test]
    fn batch_encoder_finish_on_empty_is_empty() {
        let mut enc = BatchEncoder::new();
        assert!(enc.finish().is_empty());
    }

    #[test]
    fn decode_consumes_exactly_one_tuple_from_a_concatenation() {
        let stats = SerStats::default();
        let a = Tuple::new(TaskId(1), vec![Value::Int(1)]);
        let b = Tuple::new(TaskId(2), vec![Value::Int(2)]);
        let mut buf = encode_tuple_vec(&a, &stats);
        let split = buf.len();
        encode_tuple(&b, &mut buf, &stats);
        let (t1, used1) = decode_tuple(&buf, &stats).unwrap();
        assert_eq!(used1, split);
        assert_eq!(t1, a);
        let (t2, _) = decode_tuple(&buf[used1..], &stats).unwrap();
        assert_eq!(t2, b);
    }
}
