//! Named field schemas.
//!
//! Every logical node declares the fields of the tuples it emits (as Storm
//! bolts do with `declareOutputFields`). Key-based routing then selects a
//! subset of those names to hash on; the control plane can swap that subset
//! at runtime via a `ROUTING` control tuple (§3.3.2 of the paper).

use crate::{Result, TupleError, Value};
use std::fmt;
use std::sync::Arc;

/// An ordered, immutable list of field names describing one stream's tuples.
///
/// `Fields` is cheap to clone (it is an `Arc` internally) because every
/// outgoing tuple on a stream shares the same schema.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Fields {
    names: Arc<[String]>,
}

impl Fields {
    /// Builds a schema from field names.
    ///
    /// # Panics
    /// Panics if two fields share a name — schemas are author-written
    /// constants and a duplicate is always a programming error.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert!(a != b, "duplicate field name {a:?} in schema");
            }
        }
        Fields {
            names: names.into(),
        }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the schema has no fields (valid for pure-signal streams).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Position of `name` in the schema, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Iterator over the field names in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Resolves a list of field names to their indices, used when a
    /// key-based routing policy is (re)configured.
    ///
    /// Returns [`TupleError::UnknownField`] naming the first missing field.
    pub fn resolve(&self, keys: &[String]) -> Result<Vec<usize>> {
        keys.iter()
            .map(|k| {
                self.index_of(k)
                    .ok_or_else(|| TupleError::UnknownField(k.clone()))
            })
            .collect()
    }

    /// Projects `values` down to the named key fields (in `keys` order).
    pub fn select<'v>(&self, keys: &[String], values: &'v [Value]) -> Result<Vec<&'v Value>> {
        self.resolve(keys)?
            .into_iter()
            .map(|i| {
                values.get(i).ok_or(TupleError::BadLength {
                    declared: i + 1,
                    available: values.len(),
                })
            })
            .collect()
    }
}

impl fmt::Debug for Fields {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.names.iter()).finish()
    }
}

impl<S: Into<String>> FromIterator<S> for Fields {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        Fields::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_lookup() {
        let f = Fields::new(["word", "count"]);
        assert_eq!(f.index_of("word"), Some(0));
        assert_eq!(f.index_of("count"), Some(1));
        assert_eq!(f.index_of("missing"), None);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn duplicate_names_panic() {
        let _ = Fields::new(["a", "a"]);
    }

    #[test]
    fn resolve_reports_first_missing_field() {
        let f = Fields::new(["a", "b"]);
        let err = f.resolve(&["a".into(), "z".into()]).unwrap_err();
        assert_eq!(err, TupleError::UnknownField("z".into()));
    }

    #[test]
    fn select_projects_in_key_order() {
        let f = Fields::new(["a", "b", "c"]);
        let vals = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
        let picked = f.select(&["c".into(), "a".into()], &vals).unwrap();
        assert_eq!(picked, vec![&Value::Int(3), &Value::Int(1)]);
    }

    #[test]
    fn select_detects_short_tuple() {
        let f = Fields::new(["a", "b"]);
        let vals = vec![Value::Int(1)];
        assert!(matches!(
            f.select(&["b".into()], &vals),
            Err(TupleError::BadLength { .. })
        ));
    }

    #[test]
    fn empty_schema_is_allowed() {
        let f = Fields::new(Vec::<String>::new());
        assert!(f.is_empty());
        assert_eq!(f.resolve(&[]).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn clone_shares_storage() {
        let f = Fields::new(["x"]);
        let g = f.clone();
        assert_eq!(f, g);
    }
}
