//! The tuple: a list of values plus transport metadata.
//!
//! Matches §2 of the paper: "the format of egress data tuples consists of the
//! raw output from a data computing function, prepended by its metadata which
//! include source/destination node IDs, output length, and stream type".
//! The *destination* ID is decided by the routing step and lives in the
//! packet header (see `typhoon-net::frame`), not in the tuple itself.

use crate::{MessageId, StreamId, Value};
use std::fmt;

/// Identifies one physical task (a deployed worker instance) within a
/// topology. Task IDs are assigned by the scheduler when a logical topology
/// is converted to a physical one, and become the low bits of the worker's
/// Ethernet-style address on the SDN fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Metadata prepended to every tuple on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TupleMeta {
    /// The task that emitted this tuple.
    pub src_task: TaskId,
    /// Which stream the tuple belongs to (data vs Table 2 control streams).
    pub stream: StreamId,
    /// Guaranteed-processing lineage; [`MessageId::NONE`] when unanchored.
    pub message_id: MessageId,
    /// End-to-end trace id (`typhoon-trace`); 0 = untraced. Rides the wire
    /// with the tuple so every downstream hop can record a span without a
    /// lookup table.
    pub trace: u64,
}

impl TupleMeta {
    /// Metadata for an unanchored, untraced tuple on a given stream.
    pub fn new(src_task: TaskId, stream: StreamId) -> Self {
        TupleMeta {
            src_task,
            stream,
            message_id: MessageId::NONE,
            trace: 0,
        }
    }
}

/// A data (or control) tuple: metadata plus an ordered list of [`Value`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Transport metadata.
    pub meta: TupleMeta,
    /// The payload values, interpreted against the emitting stream's
    /// [`crate::Fields`] schema.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Creates an unanchored tuple on the default stream.
    pub fn new(src_task: TaskId, values: Vec<Value>) -> Self {
        Tuple {
            meta: TupleMeta::new(src_task, StreamId::DEFAULT),
            values,
        }
    }

    /// Creates a tuple on a specific stream.
    pub fn on_stream(src_task: TaskId, stream: StreamId, values: Vec<Value>) -> Self {
        Tuple {
            meta: TupleMeta::new(src_task, stream),
            values,
        }
    }

    /// Sets the guaranteed-processing message ID (builder style).
    pub fn with_message_id(mut self, id: MessageId) -> Self {
        self.meta.message_id = id;
        self
    }

    /// The value at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the tuple carries no values (pure signal).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// True when this tuple belongs to a framework control stream (Table 2).
    pub fn is_control(&self) -> bool {
        self.meta.stream.is_control()
    }

    /// Approximate in-memory footprint; used to model bounded worker memory.
    pub fn approx_size(&self) -> usize {
        std::mem::size_of::<TupleMeta>() + self.values.iter().map(Value::approx_size).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}(", self.meta.src_task, self.meta.stream)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tuple_is_unanchored_on_default_stream() {
        let t = Tuple::new(TaskId(3), vec![Value::Int(1)]);
        assert_eq!(t.meta.stream, StreamId::DEFAULT);
        assert!(!t.meta.message_id.is_anchored());
        assert!(!t.is_control());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn control_tuple_classification() {
        let t = Tuple::on_stream(TaskId(0), StreamId::CTRL_ROUTING, vec![]);
        assert!(t.is_control());
        assert!(t.is_empty());
    }

    #[test]
    fn with_message_id_sets_lineage() {
        let t = Tuple::new(TaskId(1), vec![]).with_message_id(MessageId { root: 5, anchor: 6 });
        assert!(t.meta.message_id.is_anchored());
        assert_eq!(t.meta.message_id.root, 5);
    }

    #[test]
    fn display_shows_source_and_values() {
        let t = Tuple::new(TaskId(2), vec![Value::Str("hi".into()), Value::Int(4)]);
        assert_eq!(t.to_string(), "t2@default(\"hi\", 4)");
    }

    #[test]
    fn approx_size_grows_with_payload() {
        let small = Tuple::new(TaskId(0), vec![Value::Int(1)]);
        let big = Tuple::new(TaskId(0), vec![Value::Blob(vec![0u8; 1024])]);
        assert!(big.approx_size() > small.approx_size() + 900);
    }
}
