//! Property tests: the wire codec must round-trip every representable tuple
//! and must never panic on arbitrary input bytes.

use proptest::prelude::*;
use typhoon_tuple::ser::{decode_tuple, encode_tuple_vec, SerStats};
use typhoon_tuple::tuple::TaskId;
use typhoon_tuple::{MessageId, StreamId, Tuple, Value};

fn arb_value(depth: u32) -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Nil),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        ".{0,64}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..128).prop_map(Value::Blob),
    ];
    leaf.prop_recursive(depth, 64, 8, |inner| {
        proptest::collection::vec(inner, 0..8).prop_map(Value::List)
    })
}

prop_compose! {
    fn arb_tuple()(
        src in any::<u32>(),
        stream in any::<u16>(),
        root in any::<u64>(),
        anchor in any::<u64>(),
        values in proptest::collection::vec(arb_value(3), 0..16),
    ) -> Tuple {
        Tuple::on_stream(TaskId(src), StreamId(stream), values)
            .with_message_id(MessageId { root, anchor })
    }
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(t in arb_tuple()) {
        let stats = SerStats::default();
        let buf = encode_tuple_vec(&t, &stats);
        let (decoded, used) = decode_tuple(&buf, &stats).expect("roundtrip decode");
        prop_assert_eq!(used, buf.len());
        // Float NaN breaks PartialEq; compare via re-encoding instead.
        let buf2 = encode_tuple_vec(&decoded, &stats);
        prop_assert_eq!(buf, buf2);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let stats = SerStats::default();
        let _ = decode_tuple(&bytes, &stats); // must return, not panic
    }

    #[test]
    fn truncation_never_decodes_to_full_length(t in arb_tuple()) {
        let stats = SerStats::default();
        let buf = encode_tuple_vec(&t, &stats);
        if buf.len() > 1 {
            let cut = buf.len() / 2;
            if let Ok((_, used)) = decode_tuple(&buf[..cut], &stats) {
                prop_assert!(used <= cut);
            }
        }
    }
}
