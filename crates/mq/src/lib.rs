//! # typhoon-mq — a Kafka-like partitioned message log
//!
//! The Yahoo streaming benchmark (§6.2, Fig. 13) reads advertisement
//! events from Apache Kafka. This crate provides the slice of Kafka the
//! benchmark needs, built from scratch: named topics split into ordered,
//! append-only partitions; producers that partition by key hash (or round
//! robin); offset-based fetches; and consumer-group offset tracking so a
//! group of Kafka-client spouts can split partitions among themselves and
//! resume after restarts.
//!
//! Everything is in-memory and thread-safe; ordering is guaranteed within
//! a partition, exactly like the real system.

#![warn(missing_docs)]

use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors from queue operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MqError {
    /// The topic does not exist.
    UnknownTopic(String),
    /// The partition index is out of range for the topic.
    BadPartition {
        /// Requested partition.
        partition: usize,
        /// Partitions the topic actually has.
        available: usize,
    },
}

impl std::fmt::Display for MqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MqError::UnknownTopic(t) => write!(f, "unknown topic {t:?}"),
            MqError::BadPartition {
                partition,
                available,
            } => write!(
                f,
                "partition {partition} out of range (topic has {available})"
            ),
        }
    }
}

impl std::error::Error for MqError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MqError>;

struct Partition {
    records: Mutex<Vec<Bytes>>,
}

struct Topic {
    partitions: Vec<Partition>,
    round_robin: AtomicU64,
}

/// The broker: topics, partitions, consumer-group offsets.
#[derive(Default)]
pub struct MessageQueue {
    topics: RwLock<HashMap<String, Topic>>,
    group_offsets: Mutex<HashMap<(String, String, usize), u64>>,
}

impl MessageQueue {
    /// An empty broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a topic with `partitions` partitions (idempotent; an
    /// existing topic keeps its data and partition count).
    pub fn create_topic(&self, name: &str, partitions: usize) {
        assert!(partitions > 0, "a topic needs at least one partition");
        let mut topics = self.topics.write();
        topics.entry(name.to_owned()).or_insert_with(|| Topic {
            partitions: (0..partitions)
                .map(|_| Partition {
                    records: Mutex::new(Vec::new()),
                })
                .collect(),
            round_robin: AtomicU64::new(0),
        });
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, topic: &str) -> Result<usize> {
        let topics = self.topics.read();
        match topics.get(topic) {
            Some(t) => Ok(t.partitions.len()),
            None => Err(MqError::UnknownTopic(topic.to_owned())),
        }
    }

    /// Appends a record. With a key, the partition is the key's hash (so
    /// per-key order is preserved); without, round robin. Returns
    /// `(partition, offset)`.
    pub fn produce(&self, topic: &str, key: Option<&str>, payload: Bytes) -> Result<(usize, u64)> {
        let topics = self.topics.read();
        let t = topics
            .get(topic)
            .ok_or_else(|| MqError::UnknownTopic(topic.to_owned()))?;
        let partition = match key {
            Some(k) => {
                let mut h = DefaultHasher::new();
                k.hash(&mut h);
                (h.finish() % t.partitions.len() as u64) as usize
            }
            None => {
                (t.round_robin.fetch_add(1, Ordering::Relaxed) % t.partitions.len() as u64) as usize
            }
        };
        let mut records = t.partitions[partition].records.lock();
        records.push(payload);
        Ok((partition, records.len() as u64 - 1))
    }

    /// Fetches up to `max` records starting at `offset`.
    pub fn fetch(
        &self,
        topic: &str,
        partition: usize,
        offset: u64,
        max: usize,
    ) -> Result<Vec<Bytes>> {
        let topics = self.topics.read();
        let t = topics
            .get(topic)
            .ok_or_else(|| MqError::UnknownTopic(topic.to_owned()))?;
        let p = t.partitions.get(partition).ok_or(MqError::BadPartition {
            partition,
            available: t.partitions.len(),
        })?;
        let records = p.records.lock();
        let start = (offset as usize).min(records.len());
        let end = (start + max).min(records.len());
        Ok(records[start..end].to_vec())
    }

    /// One past the last offset of a partition.
    pub fn latest_offset(&self, topic: &str, partition: usize) -> Result<u64> {
        let topics = self.topics.read();
        let t = topics
            .get(topic)
            .ok_or_else(|| MqError::UnknownTopic(topic.to_owned()))?;
        let p = t.partitions.get(partition).ok_or(MqError::BadPartition {
            partition,
            available: t.partitions.len(),
        })?;
        let len = p.records.lock().len() as u64;
        Ok(len)
    }

    /// A consumer group's committed offset (0 when never committed).
    pub fn committed(&self, group: &str, topic: &str, partition: usize) -> u64 {
        self.group_offsets
            .lock()
            .get(&(group.to_owned(), topic.to_owned(), partition))
            .copied()
            .unwrap_or(0)
    }

    /// Commits a consumer group's offset.
    pub fn commit(&self, group: &str, topic: &str, partition: usize, offset: u64) {
        self.group_offsets
            .lock()
            .insert((group.to_owned(), topic.to_owned(), partition), offset);
    }

    /// Convenience: fetch from the group's committed offset and advance it.
    /// Returns the records (possibly empty).
    pub fn poll(
        &self,
        group: &str,
        topic: &str,
        partition: usize,
        max: usize,
    ) -> Result<Vec<Bytes>> {
        let offset = self.committed(group, topic, partition);
        let records = self.fetch(topic, partition, offset, max)?;
        if !records.is_empty() {
            self.commit(group, topic, partition, offset + records.len() as u64);
        }
        Ok(records)
    }
}

impl std::fmt::Debug for MessageQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MessageQueue({} topics)", self.topics.read().len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn produce_fetch_in_partition_order() {
        let mq = MessageQueue::new();
        mq.create_topic("ads", 1);
        for i in 0..5 {
            mq.produce("ads", None, payload(&format!("e{i}"))).unwrap();
        }
        let got = mq.fetch("ads", 0, 0, 100).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(&got[0][..], b"e0");
        assert_eq!(&got[4][..], b"e4");
        assert_eq!(mq.latest_offset("ads", 0).unwrap(), 5);
    }

    #[test]
    fn keyed_records_stay_in_one_partition() {
        let mq = MessageQueue::new();
        mq.create_topic("ads", 4);
        let mut partitions = std::collections::HashSet::new();
        for _ in 0..10 {
            let (p, _) = mq.produce("ads", Some("campaign-1"), payload("x")).unwrap();
            partitions.insert(p);
        }
        assert_eq!(partitions.len(), 1, "key → stable partition");
    }

    #[test]
    fn unkeyed_records_round_robin() {
        let mq = MessageQueue::new();
        mq.create_topic("ads", 4);
        let mut counts = vec![0usize; 4];
        for _ in 0..40 {
            let (p, _) = mq.produce("ads", None, payload("x")).unwrap();
            counts[p] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    #[test]
    fn fetch_respects_offset_and_max() {
        let mq = MessageQueue::new();
        mq.create_topic("t", 1);
        for i in 0..10 {
            mq.produce("t", None, payload(&i.to_string())).unwrap();
        }
        let got = mq.fetch("t", 0, 4, 3).unwrap();
        assert_eq!(got.len(), 3);
        assert_eq!(&got[0][..], b"4");
        assert!(mq.fetch("t", 0, 100, 5).unwrap().is_empty(), "past the end");
    }

    #[test]
    fn consumer_group_poll_advances_offsets() {
        let mq = MessageQueue::new();
        mq.create_topic("t", 1);
        for i in 0..6 {
            mq.produce("t", None, payload(&i.to_string())).unwrap();
        }
        assert_eq!(mq.poll("g1", "t", 0, 4).unwrap().len(), 4);
        assert_eq!(mq.poll("g1", "t", 0, 4).unwrap().len(), 2);
        assert!(mq.poll("g1", "t", 0, 4).unwrap().is_empty());
        // A different group reads from the start.
        assert_eq!(mq.poll("g2", "t", 0, 100).unwrap().len(), 6);
        assert_eq!(mq.committed("g1", "t", 0), 6);
    }

    #[test]
    fn errors_for_unknown_topic_and_partition() {
        let mq = MessageQueue::new();
        assert!(matches!(
            mq.produce("ghost", None, payload("x")),
            Err(MqError::UnknownTopic(_))
        ));
        mq.create_topic("t", 2);
        assert!(matches!(
            mq.fetch("t", 5, 0, 1),
            Err(MqError::BadPartition { .. })
        ));
    }

    #[test]
    fn create_topic_is_idempotent() {
        let mq = MessageQueue::new();
        mq.create_topic("t", 2);
        mq.produce("t", None, payload("keep")).unwrap();
        mq.create_topic("t", 8); // ignored: keeps 2 partitions + data
        assert_eq!(mq.partitions("t").unwrap(), 2);
        let total: usize = (0..2)
            .map(|p| mq.fetch("t", p, 0, 100).unwrap().len())
            .sum();
        assert_eq!(total, 1);
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        let mq = std::sync::Arc::new(MessageQueue::new());
        mq.create_topic("t", 4);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let mq = mq.clone();
                std::thread::spawn(move || {
                    for i in 0..250 {
                        mq.produce("t", None, payload(&i.to_string())).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let total: u64 = (0..4).map(|p| mq.latest_offset("t", p).unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
