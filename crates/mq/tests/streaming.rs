//! Broker tests beyond the unit suite: concurrent producer/consumer
//! streaming, multi-partition consumer groups, and replay-from-zero (the
//! property the Yahoo benchmark's kafka-client spout relies on after a
//! restart).

use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon_mq::MessageQueue;

#[test]
fn live_producer_consumer_stream() {
    let mq = Arc::new(MessageQueue::new());
    mq.create_topic("t", 1);
    const N: usize = 5_000;
    let producer = {
        let mq = mq.clone();
        std::thread::spawn(move || {
            for i in 0..N {
                mq.produce("t", None, Bytes::from(i.to_string())).unwrap();
            }
        })
    };
    // Consume concurrently with production, in order.
    let mut seen = 0usize;
    let deadline = Instant::now() + Duration::from_secs(10);
    while seen < N {
        assert!(Instant::now() < deadline, "stalled at {seen}");
        let records = mq.poll("g", "t", 0, 64).unwrap();
        for r in records {
            let v: usize = std::str::from_utf8(&r).unwrap().parse().unwrap();
            assert_eq!(v, seen, "ordering broke");
            seen += 1;
        }
    }
    producer.join().unwrap();
}

#[test]
fn consumer_groups_split_partitions() {
    let mq = MessageQueue::new();
    mq.create_topic("t", 4);
    for i in 0..400 {
        mq.produce("t", None, Bytes::from(i.to_string())).unwrap();
    }
    // A 2-member group statically splits partitions {0,1} / {2,3}.
    let mut member_a = 0;
    for p in [0usize, 1] {
        member_a += mq.poll("group", "t", p, 1_000).unwrap().len();
    }
    let mut member_b = 0;
    for p in [2usize, 3] {
        member_b += mq.poll("group", "t", p, 1_000).unwrap().len();
    }
    assert_eq!(member_a + member_b, 400);
    assert_eq!(member_a, 200);
    assert_eq!(member_b, 200);
}

#[test]
fn replay_from_zero_after_commit_reset() {
    let mq = MessageQueue::new();
    mq.create_topic("t", 1);
    for i in 0..10 {
        mq.produce("t", None, Bytes::from(i.to_string())).unwrap();
    }
    assert_eq!(mq.poll("g", "t", 0, 100).unwrap().len(), 10);
    assert!(mq.poll("g", "t", 0, 100).unwrap().is_empty());
    // A restarted consumer that resets its offset re-reads everything —
    // the log is immutable and replayable.
    mq.commit("g", "t", 0, 0);
    assert_eq!(mq.poll("g", "t", 0, 100).unwrap().len(), 10);
}
