//! Real-primitive stress runs (`--no-default-features`): the same kernel
//! sources, compiled against `typhoon-diag` locks and std threads, run
//! many times under genuine OS scheduling. Only the *fixed* flavours run
//! here — pre-fix flavours are probabilistic under real scheduling and
//! belong to the model suite, which fails them deterministically.

#![cfg(not(feature = "model"))]

use typhoon_check::kernels::{batch, checkpoint, election, recovery, ring, tunnel};

const RUNS: usize = 200;

#[test]
fn ring_close_pop_fixed_stress() {
    for _ in 0..RUNS {
        ring::close_pop_scenario(true);
    }
}

#[test]
fn batch_push_close_fixed_stress() {
    for _ in 0..RUNS {
        batch::push_batch_close_scenario(true);
    }
}

#[test]
fn batch_pop_close_fixed_stress() {
    for _ in 0..RUNS {
        batch::pop_batch_close_scenario(true);
    }
}

#[test]
fn tunnel_send_teardown_fixed_stress() {
    for _ in 0..RUNS {
        tunnel::send_send_teardown_scenario(true);
    }
}

#[test]
fn tunnel_first_cause_fixed_stress() {
    for _ in 0..RUNS {
        tunnel::first_cause_scenario(true);
    }
}

#[test]
fn checkpoint_snapshot_fixed_stress() {
    for _ in 0..RUNS {
        checkpoint::snapshot_fold_scenario(true);
    }
}

#[test]
fn election_two_candidates_fixed_stress() {
    for _ in 0..RUNS {
        election::two_candidate_scenario(true);
    }
}

#[test]
fn recovery_resteer_fixed_stress() {
    for _ in 0..RUNS {
        recovery::resteer_ack_scenario(true);
    }
}
