//! Model-checker regression suite: every extracted kernel is explored in
//! both flavours. The `fixed` variants (the code the workspace ships
//! today) must survive every schedule; the `prefix` (pre-fix) variants
//! must fail — each pins a historical race so a regression that
//! reintroduces it flips a deterministic test.
//!
//! Failing runs print their replay recipe (`CHECK_TRACE=…` /
//! `CHECK_SEED=…`); run with `--nocapture` to capture it from CI logs.

#![cfg(feature = "model")]

use std::sync::Arc;
use typhoon_check::kernels::{batch, checkpoint, election, recovery, ring, tunnel};
use typhoon_check::sync::{thread, Mutex};
use typhoon_check::{Checker, Replay};

// ------------------------------------------------------------ ring (PR 3)

#[test]
fn ring_close_pop_race_is_found_on_prefix_logic() {
    let failure = Checker::default()
        .check("ring-close-pop/prefix", || ring::close_pop_scenario(false))
        .expect_failure();
    println!("found the PR-3 ring race:\n{failure}");
    assert!(
        failure.message.contains("close/pop race"),
        "unexpected failure: {}",
        failure.message
    );
    assert!(
        matches!(&failure.replay, Replay::Trace(t) if !t.is_empty()),
        "DFS phase should find this race deterministically"
    );
}

#[test]
fn ring_close_pop_race_reproduces_deterministically() {
    // Same kernel, same checker config → byte-identical replay trace.
    let first = Checker::default()
        .check("ring-close-pop/prefix", || ring::close_pop_scenario(false))
        .expect_failure();
    let second = Checker::default()
        .check("ring-close-pop/prefix", || ring::close_pop_scenario(false))
        .expect_failure();
    let (Replay::Trace(a), Replay::Trace(b)) = (&first.replay, &second.replay) else {
        panic!("expected DFS traces from both runs");
    };
    assert_eq!(a, b, "the checker must be schedule-deterministic");
}

#[test]
fn ring_close_pop_fixed_logic_passes() {
    let report =
        Checker::default().check("ring-close-pop/fixed", || ring::close_pop_scenario(true));
    println!(
        "ring-close-pop/fixed: {} schedule(s), exhausted={}",
        report.schedules, report.exhausted
    );
    report.assert_ok();
}

// ------------------------------------------------- batched rings (this PR)

#[test]
fn push_batch_remainder_drop_is_found_on_prefix_logic() {
    let failure = Checker::default()
        .check("batch-push-close/prefix", || {
            batch::push_batch_close_scenario(false)
        })
        .expect_failure();
    println!("found the push_batch remainder drop:\n{failure}");
    assert!(
        failure.message.contains("batch accounting"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn push_batch_close_fixed_logic_passes() {
    Checker::default()
        .check("batch-push-close/fixed", || {
            batch::push_batch_close_scenario(true)
        })
        .assert_ok();
}

#[test]
fn pop_batch_partial_drain_loss_is_found_on_prefix_logic() {
    let failure = Checker::default()
        .check("batch-pop-close/prefix", || {
            batch::pop_batch_close_scenario(false)
        })
        .expect_failure();
    println!("found the pop_batch partial-drain loss:\n{failure}");
    assert!(
        failure.message.contains("half-consumed batch"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn pop_batch_close_fixed_logic_passes() {
    Checker::default()
        .check("batch-pop-close/fixed", || {
            batch::pop_batch_close_scenario(true)
        })
        .assert_ok();
}

// ---------------------------------------------------------- tunnel (PR 3)

#[test]
fn tunnel_torn_frame_is_found_on_prefix_logic() {
    let failure = Checker::default()
        .check("tunnel-send-teardown/prefix", || {
            tunnel::send_send_teardown_scenario(false)
        })
        .expect_failure();
    println!("found the torn-frame race:\n{failure}");
    assert!(
        failure.message.contains("torn frame") || failure.message.contains("exactly once"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn tunnel_send_teardown_fixed_logic_passes() {
    Checker::default()
        .check("tunnel-send-teardown/fixed", || {
            tunnel::send_send_teardown_scenario(true)
        })
        .assert_ok();
}

#[test]
fn tunnel_first_cause_overwrite_is_found_on_prefix_logic() {
    let failure = Checker::default()
        .check("tunnel-first-cause/prefix", || {
            tunnel::first_cause_scenario(false)
        })
        .expect_failure();
    println!("found the cause-overwrite race:\n{failure}");
    assert!(
        failure.message.contains("first-cause"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn tunnel_first_cause_fixed_logic_passes() {
    Checker::default()
        .check("tunnel-first-cause/fixed", || {
            tunnel::first_cause_scenario(true)
        })
        .assert_ok();
}

// ------------------------------------------------------ checkpoint (PR 4)

#[test]
fn checkpoint_split_snapshot_race_is_found_on_prefix_logic() {
    let failure = Checker::default()
        .check("checkpoint-snapshot/prefix", || {
            checkpoint::snapshot_fold_scenario(false)
        })
        .expect_failure();
    println!("found the split-snapshot race:\n{failure}");
    assert!(
        failure.message.contains("replay-exact"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn checkpoint_atomic_snapshot_fixed_logic_passes() {
    Checker::default()
        .check("checkpoint-snapshot/fixed", || {
            checkpoint::snapshot_fold_scenario(true)
        })
        .assert_ok();
}

// -------------------------------------------------------- recovery (PR 4)

#[test]
fn recovery_stale_ack_race_is_found_on_prefix_logic() {
    let failure = Checker::default()
        .check("recovery-resteer/prefix", || {
            recovery::resteer_ack_scenario(false)
        })
        .expect_failure();
    println!("found the stale-ack race:\n{failure}");
    assert!(
        failure.message.contains("double ack") || failure.message.contains("retire"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn recovery_round_tagged_acks_fixed_logic_passes() {
    Checker::default()
        .check("recovery-resteer/fixed", || {
            recovery::resteer_ack_scenario(true)
        })
        .assert_ok();
}

// ------------------------------------------------------- election (PR 10)

#[test]
fn election_double_claim_is_found_on_prefix_logic() {
    let failure = Checker::default()
        .check("election-two-candidates/prefix", || {
            election::two_candidate_scenario(false)
        })
        .expect_failure();
    println!("found the double-claimed-term race:\n{failure}");
    assert!(
        failure.message.contains("one leader per term"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn election_two_candidates_fixed_logic_passes() {
    Checker::default()
        .check("election-two-candidates/fixed", || {
            election::two_candidate_scenario(true)
        })
        .assert_ok();
}

// ------------------------------------------------------- engine self-tests

#[test]
fn sequential_body_explores_exactly_one_schedule() {
    let report = Checker::default().check("self/sequential", || {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    });
    report.assert_ok();
    assert!(report.exhausted, "a single-thread body has one schedule");
}

#[test]
fn abba_deadlock_is_detected() {
    let failure = Checker::default()
        .check("self/abba-deadlock", || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let child = thread::spawn(move || {
                let _a = a2.lock();
                let _b = b2.lock();
            });
            let _b = b.lock();
            let _a = a.lock();
            drop((_a, _b));
            child.join();
        })
        .expect_failure();
    println!("found the AB-BA deadlock:\n{failure}");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn rank_inversion_is_reported_as_a_failure() {
    use typhoon_diag::rank;
    let failure = Checker::default()
        .check("self/rank-inversion", || {
            let outer = Mutex::with_rank(rank::TUNNEL, "model.tunnel", ());
            let inner = Mutex::with_rank(rank::CLUSTER, "model.cluster", ());
            let _o = outer.lock();
            let _i = inner.lock();
        })
        .expect_failure();
    assert!(
        failure.message.contains("lock-order inversion"),
        "unexpected failure: {}",
        failure.message
    );
}

#[test]
fn spin_loops_hit_the_step_budget_not_a_hang() {
    use typhoon_check::sync::atomic::{AtomicBool, Ordering};
    let checker = Checker {
        max_steps: 200,
        max_schedules: 4,
        random_schedules: 0,
        ..Checker::default()
    };
    let failure = checker
        .check("self/spin", || {
            let flag = Arc::new(AtomicBool::new(false));
            let flag2 = Arc::clone(&flag);
            let child = thread::spawn(move || {
                // Never-satisfied spin: the budget must cut it off.
                while !flag2.load(Ordering::Acquire) {}
            });
            child.join();
            flag.store(true, Ordering::Release);
        })
        .expect_failure();
    assert!(
        failure.message.contains("step budget"),
        "unexpected failure: {}",
        failure.message
    );
}
