//! The primitive facade the kernels compile against.
//!
//! With the `model` feature (default) every name here resolves to the
//! checker's controlled primitives in `crate::shim`; without it, to the
//! real thing — `typhoon-diag` locks, std atomics and threads, and a
//! condvar-backed bounded channel — so the *same kernel source* runs
//! either under exhaustive schedule exploration or as a plain
//! multi-threaded stress test.
//!
//! API surface (mirrors the `typhoon-diag` wrappers plus the workspace's
//! channel idiom):
//!
//! * [`Mutex`] / [`RwLock`] — `with_rank(LockRank, name, value)`, `new`,
//!   `lock` / `read` / `write`.
//! * [`atomic`] — `AtomicBool`, `AtomicU64` with std signatures.
//! * [`bounded`] — blocking bounded channel with explicit `close`.
//! * [`Notify`] — epoch-based wakeup (`epoch` / `wait_from` /
//!   `notify_all`), the race-free replacement for condition spinning.
//! * [`thread`] — `spawn` / `JoinHandle::join` / `yield_now`.

/// Error returned by channel operations after `close`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl std::fmt::Display for Closed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "channel closed")
    }
}

#[cfg(feature = "model")]
pub use crate::shim::{
    atomic, bounded, thread, Mutex, MutexGuard, Notify, Receiver, RwLock, RwLockReadGuard,
    RwLockWriteGuard, Sender,
};

#[cfg(not(feature = "model"))]
mod real;

#[cfg(not(feature = "model"))]
pub use real::{
    atomic, bounded, thread, Mutex, MutexGuard, Notify, Receiver, RwLock, RwLockReadGuard,
    RwLockWriteGuard, Sender,
};
