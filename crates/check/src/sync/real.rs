//! Real-primitive backing for the facade: `typhoon-diag` locks, std
//! atomics and threads, and a condvar-backed bounded channel. Compiled
//! with `--no-default-features`; the kernels then run as ordinary
//! multi-threaded stress tests.

use super::Closed;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, PoisonError};

pub use typhoon_diag::{
    DiagMutex as Mutex, DiagMutexGuard as MutexGuard, DiagRwLock as RwLock,
    DiagRwLockReadGuard as RwLockReadGuard, DiagRwLockWriteGuard as RwLockWriteGuard,
};

/// Std atomics (same paths the model shims expose).
pub mod atomic {
    pub use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
}

// ----------------------------------------------------------------- channel

struct ChanState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Chan<T> {
    state: std::sync::Mutex<ChanState<T>>,
    cv: Condvar,
    cap: usize,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, ChanState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates a bounded blocking channel with the model facade's semantics.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: std::sync::Mutex::new(ChanState {
            queue: VecDeque::new(),
            closed: false,
        }),
        cv: Condvar::new(),
        cap: cap.max(1),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Sending half.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Sender<T> {
    /// Blocking send; `Err` returns the value when the channel is closed.
    pub fn send(&self, value: T) -> Result<(), T> {
        let mut st = self.chan.lock();
        loop {
            if st.closed {
                return Err(value);
            }
            if st.queue.len() < self.chan.cap {
                st.queue.push_back(value);
                self.chan.cv.notify_all();
                return Ok(());
            }
            st = self
                .chan
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        let mut st = self.chan.lock();
        if st.closed || st.queue.len() >= self.chan.cap {
            return Err(value);
        }
        st.queue.push_back(value);
        self.chan.cv.notify_all();
        Ok(())
    }

    /// Closes the channel; blocked peers wake with [`Closed`].
    pub fn close(&self) {
        self.chan.lock().closed = true;
        self.chan.cv.notify_all();
    }
}

/// Receiving half.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; [`Closed`] once closed *and* drained.
    pub fn recv(&self) -> Result<T, Closed> {
        let mut st = self.chan.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                self.chan.cv.notify_all();
                return Ok(v);
            }
            if st.closed {
                return Err(Closed);
            }
            st = self
                .chan
                .cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive; `Ok(None)` when empty but open.
    pub fn try_recv(&self) -> Result<Option<T>, Closed> {
        let mut st = self.chan.lock();
        match st.queue.pop_front() {
            Some(v) => {
                self.chan.cv.notify_all();
                Ok(Some(v))
            }
            None if st.closed => Err(Closed),
            None => Ok(None),
        }
    }

    /// Closes the channel from the receiving side.
    pub fn close(&self) {
        self.chan.lock().closed = true;
        self.chan.cv.notify_all();
    }
}

// ------------------------------------------------------------------ notify

/// Epoch-based wakeup: real implementation over mutex + condvar. The
/// epoch read / predicate check / `wait_from` protocol makes the lost
/// wakeup between check and wait impossible.
#[derive(Default)]
pub struct Notify {
    epoch: std::sync::Mutex<u64>,
    cv: Condvar,
}

impl Notify {
    /// A fresh notifier.
    pub fn new() -> Self {
        Notify::default()
    }

    /// Current notification epoch.
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Blocks until the epoch advances past `seen`.
    pub fn wait_from(&self, seen: u64) {
        let mut epoch = self.epoch.lock().unwrap_or_else(PoisonError::into_inner);
        while *epoch == seen {
            epoch = self.cv.wait(epoch).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        *self.epoch.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        self.cv.notify_all();
    }
}

// ------------------------------------------------------------------ thread

/// Real threads behind the model API.
pub mod thread {
    /// Handle to a spawned thread.
    pub struct JoinHandle(std::thread::JoinHandle<()>);

    impl JoinHandle {
        /// Blocks until the thread finishes; propagates a child panic so
        /// stress runs fail loudly like model runs do.
        pub fn join(self) {
            if let Err(payload) = self.0.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Spawns a real thread.
    pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
        JoinHandle(std::thread::spawn(f))
    }

    /// Voluntary yield.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}
