//! Kernel: recovery re-steer vs. in-flight acks (the PR-4 replay
//! protocol).
//!
//! When a worker dies, the recovery path *re-steers*: it bumps the
//! root's replay round, re-seeds the outstanding-anchor set, and
//! re-emits the lost tuples. Acks from the pre-crash round can still be
//! in flight while that happens. The fixed protocol tags every ack with
//! the round it was issued in and drops acks whose round is stale; the
//! pre-fix protocol applies any ack it receives, so a stale ack can
//! retire a *replayed* anchor and the fresh ack for the same anchor then
//! lands on an absent entry — a **double ack**.
//!
//! Invariants: no double ack ever, and after recovery settles the
//! outstanding set is empty with exactly one retirement per replayed
//! anchor.

use crate::sync::{thread, Mutex};
use std::collections::HashSet;
use std::sync::Arc;

/// The root's per-topology ack bookkeeping.
pub struct RootState {
    /// Current replay round; bumped by every re-steer.
    pub round: u32,
    /// Anchors awaiting an ack in the current round.
    pub outstanding: HashSet<u8>,
    /// Acks accepted in the current round.
    pub retired: u32,
    /// Acks that landed on an anchor not outstanding — the violation.
    pub double_acks: u32,
}

/// Shared ack/replay state in both protocol flavours.
pub struct RecoveryKernel {
    state: Mutex<RootState>,
}

impl RecoveryKernel {
    /// A root in round 1 with `anchors` outstanding.
    pub fn new(anchors: impl IntoIterator<Item = u8>) -> Self {
        RecoveryKernel {
            state: Mutex::new(RootState {
                round: 1,
                outstanding: anchors.into_iter().collect(),
                retired: 0,
                double_acks: 0,
            }),
        }
    }

    /// Applies an ack issued in `round`. `fixed` drops acks from a
    /// stale round; `!fixed` applies whatever arrives.
    pub fn ack(&self, fixed: bool, anchor: u8, round: u32) {
        let mut st = self.state.lock();
        if fixed && round != st.round {
            return; // stale in-flight ack from before the re-steer
        }
        if st.outstanding.remove(&anchor) {
            st.retired += 1;
        } else {
            st.double_acks += 1;
        }
    }

    /// Re-steer: bump the round, reset the outstanding set to the
    /// replayed anchors, forget the dead round's retirements. Returns
    /// the new round for the replayed tuples' acks.
    pub fn replay(&self, anchors: impl IntoIterator<Item = u8>) -> u32 {
        let mut st = self.state.lock();
        st.round += 1;
        st.outstanding = anchors.into_iter().collect();
        st.retired = 0;
        st.round
    }

    /// Snapshot of the final bookkeeping for scenario assertions.
    pub fn finish(&self) -> RootState {
        let st = self.state.lock();
        RootState {
            round: st.round,
            outstanding: st.outstanding.clone(),
            retired: st.retired,
            double_acks: st.double_acks,
        }
    }
}

/// A stale ack from round 1 races a re-steer to round 2 that replays
/// the same anchor plus one more. Whatever the interleaving, no ack may
/// double-retire and the replayed round must settle exactly.
pub fn resteer_ack_scenario(fixed: bool) {
    let kernel = Arc::new(RecoveryKernel::new([1u8]));

    let stale_kernel = Arc::clone(&kernel);
    let stale_acker = thread::spawn(move || {
        // An ack for anchor 1, issued before the crash (round 1), still
        // in flight while recovery runs.
        stale_kernel.ack(fixed, 1, 1);
    });

    let recovery_kernel = Arc::clone(&kernel);
    let recovery = thread::spawn(move || {
        let round = recovery_kernel.replay([1u8, 2u8]);
        recovery_kernel.ack(fixed, 1, round);
        recovery_kernel.ack(fixed, 2, round);
    });

    stale_acker.join();
    recovery.join();

    let st = kernel.finish();
    assert_eq!(
        st.double_acks, 0,
        "double ack: an in-flight pre-crash ack retired a replayed anchor"
    );
    assert!(
        st.outstanding.is_empty(),
        "replayed anchors left outstanding after recovery settled"
    );
    assert_eq!(
        st.retired, 2,
        "replayed round must retire exactly one ack per anchor"
    );
}
