//! Kernel: batched ring transfer vs. concurrent close (this PR's
//! `push_batch`/`pop_batch` in `crates/net/src/ring.rs`).
//!
//! Batching amortizes the per-frame bookkeeping, but it widens the window
//! in which the peer can close the ring: a close can now land *inside* a
//! half-consumed batch. Two historical hazards are pinned here:
//!
//! * **Producer side** — `push_batch` observes `closed` mid-batch. The
//!   naive protocol broke out of the loop and dropped the unattempted
//!   remainder on the floor; the shipped protocol leaves the remainder in
//!   the caller's vector so every frame is either enqueued or explicitly
//!   returned (`enqueued + returned == batch length`, exact accounting).
//!
//! * **Consumer side** — `pop_batch` drains part of a batch and then hits
//!   `Disconnected` on the emptied queue. The naive protocol returned the
//!   error, so the caller treated the poll as dead and discarded the
//!   frames already drained; the shipped protocol reports `Ok(n)` for any
//!   partial drain and only surfaces `Disconnected` on an empty one —
//!   PR 3's "no lost tuple" invariant extended to batches.

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{thread, Mutex, Notify};
use std::collections::VecDeque;
use std::sync::Arc;

/// What one `push_batch` reported to its caller.
#[derive(Debug, Default)]
pub struct PushOutcome {
    /// Frames enqueued before the close (if any) was observed.
    pub enqueued: usize,
    /// True when the ring was observed closed mid-batch.
    pub disconnected: bool,
}

/// What one blocking `pop_batch` observed.
#[derive(Debug, PartialEq, Eq)]
pub enum BatchPop {
    /// A non-empty drained batch (frame tags).
    Frames(Vec<u32>),
    /// Closed and drained.
    Disconnected,
}

/// The ring reduced to the cells the batch protocols race on: the frame
/// queue and the closed flag.
pub struct BatchRing {
    queue: Mutex<VecDeque<u32>>,
    closed: AtomicBool,
    notify: Notify,
}

impl BatchRing {
    /// An open, empty ring.
    pub fn new() -> Self {
        BatchRing {
            queue: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
            notify: Notify::new(),
        }
    }

    /// Producer: enqueue one frame (the spine of the seed-state `push`).
    pub fn push(&self, frame: u32) {
        self.queue.lock().push_back(frame);
        self.notify.notify_all();
    }

    /// Either peer: close the ring.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.notify.notify_all();
    }

    /// Producer: enqueue a whole batch, checking `closed` before every
    /// frame exactly like the real `push_batch`. `fixed` selects the
    /// shipped protocol (the unattempted remainder is restored to the
    /// caller's vector); `!fixed` is the naive protocol that breaks out
    /// and silently drops the remainder.
    pub fn push_batch(&self, batch: &mut Vec<u32>, fixed: bool) -> PushOutcome {
        let mut outcome = PushOutcome::default();
        let mut iter = std::mem::take(batch).into_iter();
        loop {
            if self.closed.load(Ordering::Acquire) {
                outcome.disconnected = true;
                if fixed {
                    *batch = iter.collect();
                }
                break;
            }
            let frame = match iter.next() {
                Some(f) => f,
                None => break,
            };
            self.queue.lock().push_back(frame);
            outcome.enqueued += 1;
            self.notify.notify_all();
        }
        outcome
    }

    /// Consumer: blocking batched pop. `fixed` selects the shipped
    /// protocol (a partial drain is returned even when the close is
    /// observed right after it); `!fixed` is the naive protocol that
    /// reports `Disconnected` for the whole poll, losing the frames it
    /// had already drained.
    pub fn pop_batch_wait(&self, max: usize, fixed: bool) -> BatchPop {
        loop {
            let seen = self.notify.epoch();
            let mut drained = Vec::new();
            {
                let mut queue = self.queue.lock();
                while drained.len() < max {
                    match queue.pop_front() {
                        Some(f) => drained.push(f),
                        None => break,
                    }
                }
            }
            if drained.len() == max {
                // A full batch never even looks at `closed`.
                return BatchPop::Frames(drained);
            }
            if self.closed.load(Ordering::Acquire) {
                // Re-check for the push-then-close race (PR 3): a frame
                // enqueued between our empty pop and the `closed` load
                // must still be delivered. Both flavours do this — the
                // single-frame race is pinned by the `ring` kernel.
                {
                    let mut queue = self.queue.lock();
                    while drained.len() < max {
                        match queue.pop_front() {
                            Some(f) => drained.push(f),
                            None => break,
                        }
                    }
                }
                if drained.is_empty() {
                    return BatchPop::Disconnected;
                }
                if fixed {
                    return BatchPop::Frames(drained);
                }
                // Naive protocol: the error outranks the partial drain and
                // the caller never sees these frames.
                return BatchPop::Disconnected;
            }
            if !drained.is_empty() {
                return BatchPop::Frames(drained);
            }
            self.notify.wait_from(seen);
        }
    }
}

impl Default for BatchRing {
    fn default() -> Self {
        BatchRing::new()
    }
}

/// Producer scenario: a 3-frame `push_batch` races a peer closing the
/// ring. Every frame must be accounted for — enqueued or handed back.
pub fn push_batch_close_scenario(fixed: bool) {
    let ring = Arc::new(BatchRing::new());
    let closer_ring = Arc::clone(&ring);
    let closer = thread::spawn(move || {
        closer_ring.close();
    });
    let mut batch = vec![1, 2, 3];
    let outcome = ring.push_batch(&mut batch, fixed);
    closer.join();
    assert_eq!(
        outcome.enqueued + batch.len(),
        3,
        "batch accounting: a frame was neither enqueued nor returned to the caller"
    );
    if !outcome.disconnected {
        assert_eq!(
            outcome.enqueued, 3,
            "no close observed, all frames enqueued"
        );
    }
}

/// Consumer scenario: the producer pushes three frames and closes; the
/// consumer drains with `pop_batch(max = 2)` until `Disconnected`. All
/// three frames must arrive — none lost from a half-consumed batch.
pub fn pop_batch_close_scenario(fixed: bool) {
    let ring = Arc::new(BatchRing::new());
    let producer_ring = Arc::clone(&ring);
    let producer = thread::spawn(move || {
        producer_ring.push(1);
        producer_ring.push(2);
        producer_ring.push(3);
        producer_ring.close();
    });
    let mut got = 0usize;
    while let BatchPop::Frames(frames) = ring.pop_batch_wait(2, fixed) {
        got += frames.len();
    }
    producer.join();
    assert_eq!(
        got, 3,
        "half-consumed batch: Disconnected discarded frames already drained"
    );
}
