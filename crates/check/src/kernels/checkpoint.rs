//! Kernel: checkpoint snapshot vs. fold+ack (the PR-4 exactness
//! contract).
//!
//! `crates/core/src/checkpoint.rs` snapshots a stateful bolt's state
//! **atomically with** its replay-dedup ledger: after a crash, a
//! replayed tuple is folded iff its `(base_root, position)` key is
//! absent from the restored ledger, so the ledger and the counts always
//! describe the same instant.
//!
//! The pre-fix protocol modelled here keeps count and ledger behind
//! separate locks and snapshots them separately. A fold that has bumped
//! the count but not yet recorded itself in the ledger (or a snapshot
//! that reads the two sides around a concurrent fold) produces a
//! checkpoint whose replay double-counts or drops a tuple.
//!
//! Invariant: **exact counts after restore + replay** — for any schedule
//! and any snapshot instant, restoring the checkpoint and replaying the
//! full tuple set yields exactly one fold per distinct tuple.

use crate::sync::{thread, Mutex};
use std::collections::HashSet;
use std::sync::Arc;

/// A tuple key: `(base_root, anchor position)`.
pub type Key = (u64, u16);

/// Bolt state + dedup ledger as one snapshot unit.
#[derive(Clone, Default)]
pub struct BoltState {
    /// The folded count (the stateful bolt's entire "state" here).
    pub count: u64,
    /// Which keys have been folded into `count`.
    pub ledger: HashSet<Key>,
}

impl BoltState {
    /// Folds one tuple with dedup: counts iff the key is fresh.
    pub fn fold(&mut self, key: Key) {
        if self.ledger.insert(key) {
            self.count += 1;
        }
    }
}

/// The bolt's shared state in both protocol flavours.
pub struct CheckpointKernel {
    /// Fixed protocol: count and ledger live under one lock and are
    /// folded/snapshotted atomically.
    atomic_state: Mutex<BoltState>,
    /// Pre-fix protocol: count and ledger behind separate locks.
    split_count: Mutex<u64>,
    split_ledger: Mutex<HashSet<Key>>,
}

impl CheckpointKernel {
    /// A bolt with zero state.
    pub fn new() -> Self {
        CheckpointKernel {
            atomic_state: Mutex::new(BoltState::default()),
            split_count: Mutex::new(0),
            split_ledger: Mutex::new(HashSet::new()),
        }
    }

    /// Worker side: fold one tuple.
    pub fn fold(&self, fixed: bool, key: Key) {
        if fixed {
            self.atomic_state.lock().fold(key);
        } else {
            // Pre-fix: the count bump and the ledger record are separate
            // critical sections — a snapshot can land between them.
            let fresh = !self.split_ledger.lock().contains(&key);
            if fresh {
                *self.split_count.lock() += 1;
                self.split_ledger.lock().insert(key);
            }
        }
    }

    /// Checkpointer side: snapshot the bolt.
    pub fn snapshot(&self, fixed: bool) -> BoltState {
        if fixed {
            self.atomic_state.lock().clone()
        } else {
            BoltState {
                count: *self.split_count.lock(),
                ledger: self.split_ledger.lock().clone(),
            }
        }
    }
}

impl Default for CheckpointKernel {
    fn default() -> Self {
        CheckpointKernel::new()
    }
}

/// A worker folds three tuples while a checkpointer snapshots at an
/// arbitrary instant; the run then crashes at that snapshot, restores,
/// and replays everything. The restored-and-replayed count must be
/// exactly the number of distinct tuples.
pub fn snapshot_fold_scenario(fixed: bool) {
    let tuples: [Key; 3] = [(1, 0), (1, 1), (2, 0)];
    let kernel = Arc::new(CheckpointKernel::new());

    let worker_kernel = Arc::clone(&kernel);
    let worker = thread::spawn(move || {
        for key in tuples {
            worker_kernel.fold(fixed, key);
        }
    });

    let (snap_tx, snap_rx) = crate::sync::bounded(1);
    let snap_kernel = Arc::clone(&kernel);
    let checkpointer = thread::spawn(move || {
        let _ = snap_tx.send(snap_kernel.snapshot(fixed));
    });

    let snapshot = snap_rx.recv().expect("snapshot delivered");
    worker.join();
    checkpointer.join();

    // Crash at the snapshot instant; restore and replay the full set.
    let mut restored = snapshot;
    for key in tuples {
        restored.fold(key);
    }
    assert_eq!(
        restored.count,
        tuples.len() as u64,
        "checkpoint is not replay-exact: state and ledger describe different instants"
    );
}
