//! Kernel: ring close vs. pop (the PR-3 `typhoon-net` race).
//!
//! `crates/net/src/ring.rs` lets a producer push one last frame and then
//! close (producer drop closes implicitly). The consumer's `pop` observes
//! the queue and the `closed` flag in two separate atomic steps; before
//! PR 3 a pop could see the queue empty, lose the CPU to the
//! push-then-close, and then observe `closed == true` — reporting
//! `Disconnected` with the final frame still queued. The fix re-checks
//! the queue *after* observing `closed`.
//!
//! Invariant: **no lost tuple** — every frame pushed before the close is
//! delivered before `Disconnected`.

use crate::sync::atomic::{AtomicBool, Ordering};
use crate::sync::{thread, Mutex, Notify};
use std::collections::VecDeque;
use std::sync::Arc;

/// What a blocking pop observed.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop {
    /// A frame (its payload tag).
    Frame(u32),
    /// Closed and (believed) drained.
    Disconnected,
}

/// The ring's shared state, reduced to the two cells the race runs on:
/// the frame queue and the closed flag.
pub struct RingKernel {
    queue: Mutex<VecDeque<u32>>,
    closed: AtomicBool,
    notify: Notify,
}

impl RingKernel {
    /// An open, empty ring.
    pub fn new() -> Self {
        RingKernel {
            queue: Mutex::new(VecDeque::new()),
            closed: AtomicBool::new(false),
            notify: Notify::new(),
        }
    }

    /// Producer: enqueue one frame.
    pub fn push(&self, frame: u32) {
        self.queue.lock().push_back(frame);
        self.notify.notify_all();
    }

    /// Producer: close the ring (the `Drop` half of the real producer).
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.notify.notify_all();
    }

    /// Consumer: blocking pop. `fixed` selects the post-PR-3 protocol
    /// (re-check the queue after observing `closed`); `!fixed` is the
    /// seed-state logic that loses the close/pop race.
    pub fn pop_wait(&self, fixed: bool) -> Pop {
        loop {
            let seen = self.notify.epoch();
            if let Some(frame) = self.queue.lock().pop_front() {
                return Pop::Frame(frame);
            }
            if self.closed.load(Ordering::Acquire) {
                if fixed {
                    // A frame enqueued between our empty pop and the
                    // `closed` load must still be delivered.
                    if let Some(frame) = self.queue.lock().pop_front() {
                        return Pop::Frame(frame);
                    }
                }
                return Pop::Disconnected;
            }
            self.notify.wait_from(seen);
        }
    }
}

impl Default for RingKernel {
    fn default() -> Self {
        RingKernel::new()
    }
}

/// The PR-3 scenario: one producer pushes a single frame and immediately
/// closes; the consumer drains until `Disconnected`. The frame must
/// arrive.
pub fn close_pop_scenario(fixed: bool) {
    let ring = Arc::new(RingKernel::new());
    let producer_ring = Arc::clone(&ring);
    let producer = thread::spawn(move || {
        producer_ring.push(7);
        producer_ring.close();
    });
    let mut got = 0u32;
    while let Pop::Frame(_) = ring.pop_wait(fixed) {
        got += 1;
    }
    producer.join();
    assert_eq!(
        got, 1,
        "close/pop race: Disconnected reported with the final frame still queued"
    );
}
