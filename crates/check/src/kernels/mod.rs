//! Extracted concurrency kernels.
//!
//! A *kernel* is the smallest faithful restatement of one of the
//! workspace's concurrency protocols, written against the
//! [`crate::sync`] facade so the same source runs under the model
//! checker (`model` feature, the default) or real primitives
//! (`--no-default-features`).
//!
//! Each kernel ships **both** the current (fixed) protocol and the
//! pre-fix protocol of the race it guards against, selected by a
//! `fixed: bool` parameter. The checker test suite asserts the pre-fix
//! variant fails (the checker *finds* the historical race, with a
//! replayable schedule) and the fixed variant passes — so a regression
//! that reintroduces the race flips a deterministic test, not a chaos
//! run.
//!
//! Extraction ground rules (see `docs/CONCURRENCY.md` for the workflow):
//!
//! * Keep only the shared state and the statements that touch it; drop
//!   I/O, metrics and error plumbing.
//! * Replace spin loops with [`crate::sync::Notify`] — the model
//!   scheduler explores *choices*, and an unbounded spin is an
//!   unbounded choice tree.
//! * State every invariant as an `assert!` inside the scenario; the
//!   checker reports the schedule that broke it.

pub mod batch;
pub mod checkpoint;
pub mod election;
pub mod recovery;
pub mod ring;
pub mod tunnel;
