//! Kernel: leader election after a session expiry (the PR-10 HA race).
//!
//! `crates/coordinator/src/election.rs` arbitrates controller leadership:
//! a candidate may claim the next term only while the leader slot is
//! vacant, and the vacancy check plus the term bump must be one atomic
//! step. The tempting-but-wrong protocol reads the current term under one
//! lock acquisition and writes `term + 1` under a second one — a classic
//! lost update: after one session expiry, two candidates can both observe
//! the vacancy at term *t* and both claim term *t + 1*, so two
//! controllers believe they hold the same fencing token and the
//! switches' stale-leader check can no longer tell them apart.
//!
//! Invariant: **at most one leader per term** — no term is ever claimed
//! by two candidates.

use crate::sync::{thread, Mutex};
use std::sync::Arc;

/// The election's shared state, reduced to the two cells the race runs
/// on: the leader slot and the last claimed term.
struct Slot {
    leader: Option<u32>,
    term: u64,
}

/// A model of the coordinator-backed election register.
pub struct ElectionKernel {
    state: Mutex<Slot>,
}

impl ElectionKernel {
    /// An election with an incumbent (candidate 0) holding term 1.
    pub fn new() -> Self {
        ElectionKernel {
            state: Mutex::new(Slot {
                leader: Some(0),
                term: 1,
            }),
        }
    }

    /// The incumbent's session expires: the leader slot becomes vacant.
    pub fn expire_session(&self) {
        self.state.lock().leader = None;
    }

    /// Campaign for leadership. Returns the claimed term, or `None` if
    /// another candidate already holds the slot. `fixed` selects the
    /// shipped protocol (vacancy check + term bump in one critical
    /// section); `!fixed` splits them across two lock acquisitions and
    /// loses the update.
    pub fn campaign(&self, candidate: u32, fixed: bool) -> Option<u64> {
        if fixed {
            let mut s = self.state.lock();
            if s.leader.is_some() {
                return None;
            }
            s.term += 1;
            s.leader = Some(candidate);
            Some(s.term)
        } else {
            let observed = {
                let s = self.state.lock();
                if s.leader.is_some() {
                    return None;
                }
                s.term
            };
            // The slot can be claimed between these two acquisitions —
            // this write does not re-check, so it steals the same term.
            let mut s = self.state.lock();
            s.term = observed + 1;
            s.leader = Some(candidate);
            Some(s.term)
        }
    }
}

impl Default for ElectionKernel {
    fn default() -> Self {
        ElectionKernel::new()
    }
}

/// The PR-10 scenario: the incumbent's session expires and two candidates
/// campaign for the vacant slot. At most one may win, and no term may be
/// handed out twice.
pub fn two_candidate_scenario(fixed: bool) {
    let kernel = Arc::new(ElectionKernel::new());
    kernel.expire_session();
    let claims = Arc::new(Mutex::new(Vec::new()));

    let handles: Vec<_> = [1u32, 2u32]
        .into_iter()
        .map(|candidate| {
            let kernel = Arc::clone(&kernel);
            let claims = Arc::clone(&claims);
            thread::spawn(move || {
                if let Some(term) = kernel.campaign(candidate, fixed) {
                    claims.lock().push((term, candidate));
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }

    let claims = claims.lock();
    for (i, (term, who)) in claims.iter().enumerate() {
        for (other_term, other_who) in claims.iter().skip(i + 1) {
            assert!(
                term != other_term,
                "at most one leader per term: candidates {who} and {other_who} \
                 both claimed term {term}"
            );
        }
    }
}
