//! Kernel: tunnel send vs. teardown (the PR-3 `TcpTunnel` hardening).
//!
//! A `TcpTunnel` frames tuples onto a byte stream as `[len, payload…]`.
//! Two invariants came out of PR 3:
//!
//! * **No torn frames** — a frame's length prefix and payload bytes must
//!   be written as one unit. Pre-fix, each write took the wire lock
//!   separately, so two senders (or a sender and the teardown path)
//!   could interleave mid-frame and desynchronize the stream for every
//!   frame after.
//! * **First-cause teardown** — once the tunnel is poisoned with a
//!   `TeardownCause`-style code, later teardowns must not overwrite
//!   it: operators root-cause from the *first* failure, and recovery
//!   keys off a stable cause.
//!
//! The kernel models the wire as a byte vector and payload bytes as the
//! frame's tag repeated, so a torn stream is detectable by parsing.

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{thread, Mutex};
use std::sync::Arc;

/// The tunnel's shared state: the byte stream, the whole-frame writer
/// lock (unused by the pre-fix protocol), and the poison cause cell.
pub struct TunnelKernel {
    wire: Mutex<Vec<u8>>,
    writer: Mutex<()>,
    broken: AtomicU64,
}

impl TunnelKernel {
    /// A healthy tunnel with an empty wire.
    pub fn new() -> Self {
        TunnelKernel {
            wire: Mutex::new(Vec::new()),
            writer: Mutex::new(()),
            broken: AtomicU64::new(0),
        }
    }

    /// Sends one frame of `len` payload bytes, each equal to `tag`.
    /// Returns `false` when refused because the tunnel is broken.
    ///
    /// `fixed` holds the writer lock across the length prefix *and* the
    /// payload (the post-PR-3 protocol); `!fixed` writes them as two
    /// independent wire appends, which is the torn-frame race.
    pub fn send(&self, fixed: bool, tag: u8, len: u8) -> bool {
        let _writer = if fixed {
            Some(self.writer.lock())
        } else {
            None
        };
        if self.broken.load(Ordering::Acquire) != 0 {
            return false;
        }
        self.wire.lock().push(len);
        let mut written = 0;
        while written < len {
            self.wire.lock().push(tag);
            written += 1;
        }
        true
    }

    /// Poisons the tunnel with `cause`. `fixed` keeps the first cause
    /// (compare-exchange from healthy); `!fixed` is a plain store that
    /// lets a later teardown overwrite the original diagnosis.
    pub fn teardown(&self, fixed: bool, cause: u64) {
        if fixed {
            let _ = self
                .broken
                .compare_exchange(0, cause, Ordering::AcqRel, Ordering::Acquire);
        } else {
            self.broken.store(cause, Ordering::Release);
        }
    }

    /// Current poison cause (0 = healthy).
    pub fn cause(&self) -> u64 {
        self.broken.load(Ordering::Acquire)
    }

    /// Parses the wire into frame tags; `None` on a torn stream (short
    /// frame, or payload bytes that disagree with each other).
    pub fn parse_wire(&self) -> Option<Vec<u8>> {
        let wire = self.wire.lock();
        let mut frames = Vec::new();
        let mut i = 0;
        while i < wire.len() {
            let len = wire[i] as usize;
            i += 1;
            if i + len > wire.len() {
                return None; // truncated frame
            }
            let payload = &wire[i..i + len];
            let tag = payload.first().copied()?;
            if payload.iter().any(|b| *b != tag) {
                return None; // interleaved payload bytes
            }
            frames.push(tag);
            i += len;
        }
        Some(frames)
    }
}

impl Default for TunnelKernel {
    fn default() -> Self {
        TunnelKernel::new()
    }
}

/// Two senders race a teardown. Every accepted frame must appear on the
/// wire whole and exactly once; the stream must always parse.
pub fn send_send_teardown_scenario(fixed: bool) {
    let tunnel = Arc::new(TunnelKernel::new());
    let mut senders = Vec::new();
    let mut handles = Vec::new();
    for tag in [1u8, 2u8] {
        let t = Arc::clone(&tunnel);
        let (result_tx, result_rx) = crate::sync::bounded(1);
        handles.push(thread::spawn(move || {
            let ok = t.send(fixed, tag, 2);
            let _ = result_tx.send((tag, ok));
        }));
        senders.push(result_rx);
    }
    {
        let t = Arc::clone(&tunnel);
        handles.push(thread::spawn(move || {
            t.teardown(fixed, 1);
        }));
    }
    let mut accepted = Vec::new();
    for rx in senders {
        if let Ok((tag, ok)) = rx.recv() {
            if ok {
                accepted.push(tag);
            }
        }
    }
    for h in handles {
        h.join();
    }
    let frames = tunnel
        .parse_wire()
        .expect("torn frame: wire does not parse as whole frames");
    for tag in accepted {
        assert_eq!(
            frames.iter().filter(|t| **t == tag).count(),
            1,
            "accepted frame {tag} must be on the wire exactly once"
        );
    }
}

/// Two teardowns race an observer. Once the observer has seen a cause,
/// the cause must never change (first-cause wins).
pub fn first_cause_scenario(fixed: bool) {
    let tunnel = Arc::new(TunnelKernel::new());
    let mut handles = Vec::new();
    for cause in [1u64, 2u64] {
        let t = Arc::clone(&tunnel);
        handles.push(thread::spawn(move || {
            t.teardown(fixed, cause);
        }));
    }
    for h in handles {
        h.join();
    }
    // Both teardowns have landed; the recorded cause is now the tunnel's
    // permanent diagnosis. Replaying a teardown (a second I/O error on
    // the dead socket) must not change it.
    let diagnosed = tunnel.cause();
    assert!(diagnosed != 0, "a teardown must have landed");
    tunnel.teardown(fixed, 9);
    assert_eq!(
        tunnel.cause(),
        diagnosed,
        "teardown cause changed after diagnosis (first-cause invariant)"
    );
}
