//! Model primitives: API-compatible stand-ins for the `typhoon-diag`
//! wrappers and the workspace's channel/thread idioms, with a schedule
//! point in front of every visible effect.
//!
//! The engine guarantees mutual exclusion (only the chosen thread runs),
//! so each primitive's own state can be plain interior mutability: the
//! std lock/atomic inside is never contended, it only exists to satisfy
//! `Send`/`Sync` without `unsafe`.

use crate::sched::{context, Execution};
use crate::sync::Closed;
use std::collections::VecDeque;
use std::sync::atomic::Ordering as StdOrdering;
use std::sync::{Arc, OnceLock, PoisonError};
use typhoon_diag::LockRank;

fn resource(slot: &OnceLock<u64>, exec: &Execution) -> u64 {
    *slot.get_or_init(|| exec.new_resource())
}

// ------------------------------------------------------------------- mutex

/// Model mutex, API-compatible with `typhoon_diag::DiagMutex`. Rank
/// discipline is checked by the engine and reported as a schedule failure
/// instead of a panic-with-backtrace.
pub struct Mutex<T> {
    rank: u16,
    name: &'static str,
    res: OnceLock<u64>,
    locked: std::sync::atomic::AtomicBool,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// An unranked, anonymous model lock.
    pub fn new(value: T) -> Self {
        Self::with_rank(LockRank::UNRANKED, "<anon>", value)
    }

    /// A named lock participating in the rank hierarchy.
    pub fn with_rank(rank: LockRank, name: &'static str, value: T) -> Self {
        Mutex {
            rank: rank.0,
            name,
            res: OnceLock::new(),
            locked: std::sync::atomic::AtomicBool::new(false),
            data: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock; a schedule point, and blocks the model thread
    /// while another model thread holds it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (exec, tid) = context();
        let res = resource(&self.res, &exec);
        loop {
            exec.schedule_point(tid, self.name);
            if !self.locked.swap(true, StdOrdering::SeqCst) {
                break;
            }
            exec.block_on(tid, res, self.name);
        }
        exec.push_rank(tid, self.rank, self.name);
        let guard = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            guard: Some(guard),
            lock: self,
            exec,
            tid,
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let (exec, tid) = context();
        exec.schedule_point(tid, self.name);
        if self.locked.swap(true, StdOrdering::SeqCst) {
            return None;
        }
        exec.push_rank(tid, self.rank, self.name);
        let guard = self.data.lock().unwrap_or_else(PoisonError::into_inner);
        Some(MutexGuard {
            guard: Some(guard),
            lock: self,
            exec,
            tid,
        })
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a Mutex<T>,
    exec: Arc<Execution>,
    tid: usize,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        self.lock.locked.store(false, StdOrdering::SeqCst);
        self.exec.pop_rank(self.tid, self.lock.name);
        self.exec.unblock(resource(&self.lock.res, &self.exec));
        // The release is itself a schedule point — but never while this
        // thread is unwinding (a schedule point can abort, and a panic
        // inside a panic-drop would abort the process).
        if !std::thread::panicking() {
            self.exec.schedule_point(self.tid, "unlock");
        }
    }
}

// ------------------------------------------------------------------ rwlock

/// Model reader-writer lock, API-compatible with
/// `typhoon_diag::DiagRwLock`.
pub struct RwLock<T> {
    rank: u16,
    name: &'static str,
    res: OnceLock<u64>,
    readers: std::sync::atomic::AtomicUsize,
    writer: std::sync::atomic::AtomicBool,
    data: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// An unranked, anonymous model lock.
    pub fn new(value: T) -> Self {
        Self::with_rank(LockRank::UNRANKED, "<anon>", value)
    }

    /// A named lock participating in the rank hierarchy.
    pub fn with_rank(rank: LockRank, name: &'static str, value: T) -> Self {
        RwLock {
            rank: rank.0,
            name,
            res: OnceLock::new(),
            readers: std::sync::atomic::AtomicUsize::new(0),
            writer: std::sync::atomic::AtomicBool::new(false),
            data: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let (exec, tid) = context();
        let res = resource(&self.res, &exec);
        loop {
            exec.schedule_point(tid, self.name);
            if !self.writer.load(StdOrdering::SeqCst) {
                self.readers.fetch_add(1, StdOrdering::SeqCst);
                break;
            }
            exec.block_on(tid, res, self.name);
        }
        exec.push_rank(tid, self.rank, self.name);
        let guard = self.data.read().unwrap_or_else(PoisonError::into_inner);
        RwLockReadGuard {
            guard: Some(guard),
            lock: self,
            exec,
            tid,
        }
    }

    /// Acquires the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let (exec, tid) = context();
        let res = resource(&self.res, &exec);
        loop {
            exec.schedule_point(tid, self.name);
            if !self.writer.load(StdOrdering::SeqCst) && self.readers.load(StdOrdering::SeqCst) == 0
            {
                self.writer.store(true, StdOrdering::SeqCst);
                break;
            }
            exec.block_on(tid, res, self.name);
        }
        exec.push_rank(tid, self.rank, self.name);
        let guard = self.data.write().unwrap_or_else(PoisonError::into_inner);
        RwLockWriteGuard {
            guard: Some(guard),
            lock: self,
            exec,
            tid,
        }
    }
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T> {
    guard: Option<std::sync::RwLockReadGuard<'a, T>>,
    lock: &'a RwLock<T>,
    exec: Arc<Execution>,
    tid: usize,
}

impl<T> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        self.lock.readers.fetch_sub(1, StdOrdering::SeqCst);
        self.exec.pop_rank(self.tid, self.lock.name);
        self.exec.unblock(resource(&self.lock.res, &self.exec));
        if !std::thread::panicking() {
            self.exec.schedule_point(self.tid, "read-unlock");
        }
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T> {
    guard: Option<std::sync::RwLockWriteGuard<'a, T>>,
    lock: &'a RwLock<T>,
    exec: Arc<Execution>,
    tid: usize,
}

impl<T> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        self.lock.writer.store(false, StdOrdering::SeqCst);
        self.exec.pop_rank(self.tid, self.lock.name);
        self.exec.unblock(resource(&self.lock.res, &self.exec));
        if !std::thread::panicking() {
            self.exec.schedule_point(self.tid, "write-unlock");
        }
    }
}

// ----------------------------------------------------------------- atomics

/// Model atomics: std signatures, with a schedule point per operation so
/// the checker can interleave between any two accesses.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::context;
    use std::sync::atomic::Ordering as StdOrdering;

    /// Model `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// A new flag with the given initial value.
        pub fn new(v: bool) -> Self {
            AtomicBool(std::sync::atomic::AtomicBool::new(v))
        }

        /// Atomic load (schedule point).
        pub fn load(&self, _order: Ordering) -> bool {
            let (exec, tid) = context();
            exec.schedule_point(tid, "atomic.load");
            self.0.load(StdOrdering::SeqCst)
        }

        /// Atomic store (schedule point).
        pub fn store(&self, v: bool, _order: Ordering) {
            let (exec, tid) = context();
            exec.schedule_point(tid, "atomic.store");
            self.0.store(v, StdOrdering::SeqCst);
        }

        /// Atomic swap (schedule point).
        pub fn swap(&self, v: bool, _order: Ordering) -> bool {
            let (exec, tid) = context();
            exec.schedule_point(tid, "atomic.swap");
            self.0.swap(v, StdOrdering::SeqCst)
        }

        /// Atomic compare-exchange (schedule point).
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<bool, bool> {
            let (exec, tid) = context();
            exec.schedule_point(tid, "atomic.cas");
            self.0
                .compare_exchange(current, new, StdOrdering::SeqCst, StdOrdering::SeqCst)
        }
    }

    /// Model `AtomicU64`.
    #[derive(Debug, Default)]
    pub struct AtomicU64(std::sync::atomic::AtomicU64);

    impl AtomicU64 {
        /// A new counter with the given initial value.
        pub fn new(v: u64) -> Self {
            AtomicU64(std::sync::atomic::AtomicU64::new(v))
        }

        /// Atomic load (schedule point).
        pub fn load(&self, _order: Ordering) -> u64 {
            let (exec, tid) = context();
            exec.schedule_point(tid, "atomic.load");
            self.0.load(StdOrdering::SeqCst)
        }

        /// Atomic store (schedule point).
        pub fn store(&self, v: u64, _order: Ordering) {
            let (exec, tid) = context();
            exec.schedule_point(tid, "atomic.store");
            self.0.store(v, StdOrdering::SeqCst);
        }

        /// Atomic fetch-add (schedule point).
        pub fn fetch_add(&self, v: u64, _order: Ordering) -> u64 {
            let (exec, tid) = context();
            exec.schedule_point(tid, "atomic.fetch_add");
            self.0.fetch_add(v, StdOrdering::SeqCst)
        }

        /// Atomic compare-exchange (schedule point).
        pub fn compare_exchange(
            &self,
            current: u64,
            new: u64,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<u64, u64> {
            let (exec, tid) = context();
            exec.schedule_point(tid, "atomic.cas");
            self.0
                .compare_exchange(current, new, StdOrdering::SeqCst, StdOrdering::SeqCst)
        }
    }
}

// ----------------------------------------------------------------- channel

struct ChanState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Chan<T> {
    state: std::sync::Mutex<ChanState<T>>,
    cap: usize,
    res: OnceLock<u64>,
}

/// Creates a bounded model channel. `send` blocks when full, `recv`
/// blocks when empty; both fail with [`Closed`] after `close`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: std::sync::Mutex::new(ChanState {
            queue: VecDeque::new(),
            closed: false,
        }),
        cap: cap.max(1),
        res: OnceLock::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Sending half of a bounded model channel.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Sender<T> {
    /// Blocking send; `Err` returns the value when the channel is closed.
    pub fn send(&self, value: T) -> Result<(), T> {
        let (exec, tid) = context();
        let res = resource(&self.chan.res, &exec);
        let mut slot = Some(value);
        loop {
            exec.schedule_point(tid, "chan.send");
            {
                let mut st = self
                    .chan
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if st.closed {
                    return Err(slot.take().expect("value present"));
                }
                if st.queue.len() < self.chan.cap {
                    st.queue.push_back(slot.take().expect("value present"));
                    drop(st);
                    exec.unblock(res);
                    return Ok(());
                }
            }
            exec.block_on(tid, res, "chan.full");
        }
    }

    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), T> {
        let (exec, tid) = context();
        exec.schedule_point(tid, "chan.try_send");
        let mut st = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if st.closed || st.queue.len() >= self.chan.cap {
            return Err(value);
        }
        st.queue.push_back(value);
        drop(st);
        exec.unblock(resource(&self.chan.res, &exec));
        Ok(())
    }

    /// Closes the channel; blocked peers wake with [`Closed`].
    pub fn close(&self) {
        let (exec, tid) = context();
        exec.schedule_point(tid, "chan.close");
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        exec.unblock(resource(&self.chan.res, &exec));
    }
}

/// Receiving half of a bounded model channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; [`Closed`] once the channel is closed *and*
    /// drained.
    pub fn recv(&self) -> Result<T, Closed> {
        let (exec, tid) = context();
        let res = resource(&self.chan.res, &exec);
        loop {
            exec.schedule_point(tid, "chan.recv");
            {
                let mut st = self
                    .chan
                    .state
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    exec.unblock(res);
                    return Ok(v);
                }
                if st.closed {
                    return Err(Closed);
                }
            }
            exec.block_on(tid, res, "chan.empty");
        }
    }

    /// Non-blocking receive; `Ok(None)` when empty but open.
    pub fn try_recv(&self) -> Result<Option<T>, Closed> {
        let (exec, tid) = context();
        exec.schedule_point(tid, "chan.try_recv");
        let mut st = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match st.queue.pop_front() {
            Some(v) => {
                drop(st);
                exec.unblock(resource(&self.chan.res, &exec));
                Ok(Some(v))
            }
            None if st.closed => Err(Closed),
            None => Ok(None),
        }
    }

    /// Closes the channel from the receiving side.
    pub fn close(&self) {
        let (exec, tid) = context();
        exec.schedule_point(tid, "chan.close");
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        exec.unblock(resource(&self.chan.res, &exec));
    }
}

// ------------------------------------------------------------------ notify

/// Epoch-based wakeup primitive (condvar-shaped, race-free): read
/// [`Notify::epoch`], re-check your predicate, then [`Notify::wait_from`]
/// that epoch — a notify between the check and the wait is never lost.
#[derive(Default)]
pub struct Notify {
    epoch: std::sync::atomic::AtomicU64,
    res: OnceLock<u64>,
}

impl Notify {
    /// A fresh notifier.
    pub fn new() -> Self {
        Notify::default()
    }

    /// Current notification epoch (not a schedule point; pair it with
    /// [`Notify::wait_from`]).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(StdOrdering::SeqCst)
    }

    /// Blocks until the epoch advances past `seen`. Returns immediately
    /// when a notify already happened since `seen` was read.
    pub fn wait_from(&self, seen: u64) {
        let (exec, tid) = context();
        let res = resource(&self.res, &exec);
        loop {
            exec.schedule_point(tid, "notify.wait");
            if self.epoch.load(StdOrdering::SeqCst) != seen {
                return;
            }
            exec.block_on(tid, res, "notify");
        }
    }

    /// Wakes every waiter (schedule point).
    pub fn notify_all(&self) {
        let (exec, tid) = context();
        exec.schedule_point(tid, "notify.notify_all");
        self.epoch.fetch_add(1, StdOrdering::SeqCst);
        exec.unblock(resource(&self.res, &exec));
    }
}

// ------------------------------------------------------------------ thread

/// Model threads.
pub mod thread {
    use super::context;
    use crate::sched::thread_exit_resource;

    /// Handle to a model thread.
    pub struct JoinHandle {
        tid: usize,
    }

    impl JoinHandle {
        /// Blocks until the thread finishes. A child panic aborts the
        /// whole execution and is reported by the checker, so `join`
        /// itself never returns an error.
        pub fn join(self) {
            let (exec, tid) = context();
            let res = thread_exit_resource(self.tid);
            loop {
                exec.schedule_point(tid, "join");
                if exec.thread_finished(self.tid) {
                    return;
                }
                exec.block_on(tid, res, "join");
            }
        }
    }

    /// Spawns a model thread under the current execution.
    pub fn spawn<F: FnOnce() + Send + 'static>(f: F) -> JoinHandle {
        let (exec, tid) = context();
        exec.schedule_point(tid, "spawn");
        let child = exec.spawn_thread(Box::new(f));
        JoinHandle { tid: child }
    }

    /// Voluntary yield: a bare schedule point.
    pub fn yield_now() {
        let (exec, tid) = context();
        exec.schedule_point(tid, "yield");
    }
}
