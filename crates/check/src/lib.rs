//! `typhoon-check`: a schedule-exploring model checker for the
//! workspace's concurrency kernels.
//!
//! Chaos tests (`typhoon-net`'s fault layer) shake races out by luck;
//! this crate finds them by *search*. A scenario is an ordinary closure
//! over threads and locks, written against the [`sync`] facade. Under
//! the `model` feature (the default) those primitives hand every
//! visible effect to a deterministic scheduler, and [`Checker::check`]
//! explores interleavings:
//!
//! 1. **Exhaustive DFS** over the schedule tree up to a preemption
//!    bound (default 2) — small bounds find almost all real bugs and
//!    keep the tree tractable.
//! 2. **Randomized PCT-style fallback** when the bounded tree is larger
//!    than the schedule budget: seeded priority schedules, each fully
//!    reproducible from the printed seed.
//!
//! Every failure report carries a replay recipe (`CHECK_TRACE=…` for
//! DFS traces, `CHECK_SEED=…` for random schedules) that re-runs the
//! exact interleaving under a debugger.
//!
//! The [`kernels`] module holds faithful extractions of the
//! workspace's real protocols — ring close/pop, tunnel send/teardown,
//! checkpoint snapshot/fold, recovery re-steer/ack — each in pre-fix
//! and fixed flavours, so the checker doubles as a regression pin on
//! historical races. Compile with `--no-default-features` and the same
//! kernels run against real primitives as stress tests.

pub mod kernels;
pub mod sync;

#[cfg(feature = "model")]
mod sched;
#[cfg(feature = "model")]
pub(crate) mod shim;

#[cfg(feature = "model")]
pub use sched::{CheckReport, Checker, Failure, Replay};
