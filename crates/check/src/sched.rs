//! The schedule-exploring engine.
//!
//! One *execution* runs the test body with every model thread mapped onto
//! a real OS thread, but only **one** thread is ever runnable: at each
//! schedule point the running thread hands control to the scheduler,
//! which picks the next thread according to the active [`Ctrl`] strategy.
//! Because every visible effect (shim lock, atomic, channel op) sits
//! behind a schedule point, the set of interleavings the engine can
//! produce is exactly the set of choice sequences — which makes
//! exploration deterministic and failures replayable.
//!
//! Exploration runs in two phases:
//!
//! 1. **Exhaustive DFS** over the choice tree, restricted by a preemption
//!    bound (a switch away from a still-runnable thread costs one
//!    preemption; beyond the bound the running thread keeps running).
//!    Most real concurrency bugs need very few preemptions, so a small
//!    bound covers a huge fraction of the buggy interleavings at a tiny
//!    fraction of the tree.
//! 2. **Seeded random fallback** (PCT-style thread priorities with
//!    random priority-change points) when the bounded tree is larger
//!    than the schedule budget. Every random run derives from
//!    `base_seed + run index`, and a failing run prints its exact seed:
//!    `CHECK_SEED=<seed>` replays only that schedule.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Panic payload used to tear down the remaining threads of a failed
/// execution. Never observed outside the engine.
struct AbortToken;

thread_local! {
    /// The execution the current OS thread belongs to, plus its model
    /// thread id. `None` on threads not managed by the checker.
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// Returns the current execution context; panics when called from code
/// that is not running under [`Checker::check`].
pub(crate) fn context() -> (Arc<Execution>, usize) {
    CONTEXT.with(|c| {
        c.borrow()
            .clone()
            .expect("typhoon-check model primitive used outside Checker::check")
    })
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(u64),
    Finished,
}

/// One scheduling decision: the enabled set it chose from (after the
/// preemption-bound filter) and the index chosen. DFS rewinds by bumping
/// the deepest index with untried alternatives.
#[derive(Clone, Debug)]
struct ChoicePoint {
    enabled: Vec<usize>,
    chosen: usize,
}

enum Ctrl {
    /// Replay `prefix` by choice index, then first-untried beyond it.
    Dfs { prefix: Vec<usize> },
    /// PCT-style: highest random priority runs; each decision point may
    /// (seeded) demote the running thread below every other priority.
    Random { rng: SmallRng },
}

pub(crate) struct ExecState {
    statuses: Vec<Status>,
    current: usize,
    ctrl: Ctrl,
    choices: Vec<ChoicePoint>,
    preemptions: usize,
    max_preemptions: usize,
    steps: usize,
    max_steps: usize,
    next_resource: u64,
    priorities: Vec<u64>,
    /// Per model thread: stack of (rank, name) for held ranked locks.
    held_ranks: Vec<Vec<(u16, &'static str)>>,
    failure: Option<String>,
    abort: bool,
    trace: VecDeque<String>,
    trace_cap: usize,
    spawn_bodies: Vec<Option<Box<dyn FnOnce() + Send>>>,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
}

impl Execution {
    fn lock(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Allocates a fresh resource id (used by shim objects to name the
    /// thing a thread blocks on).
    pub(crate) fn new_resource(&self) -> u64 {
        let mut st = self.lock();
        st.next_resource += 1;
        st.next_resource
    }

    /// Records a failure and aborts the execution: every thread parked at
    /// a schedule point is woken and unwinds with an [`AbortToken`].
    pub(crate) fn fail(&self, tid: usize, message: String) -> ! {
        {
            let mut st = self.lock();
            if st.failure.is_none() {
                st.failure = Some(message);
            }
            st.abort = true;
            let _ = tid;
            self.cv.notify_all();
        }
        panic::panic_any(AbortToken);
    }

    /// The heart of the engine: a schedule point. Marks the calling
    /// thread runnable, lets the strategy pick the next thread, and
    /// blocks until this thread is chosen again.
    pub(crate) fn schedule_point(&self, tid: usize, label: &str) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let msg = format!(
                "step budget ({}) exceeded at `{label}` — unbounded spin loop in the kernel? \
                 model kernels must use blocking primitives (channel/Notify) instead of \
                 spinning",
                st.max_steps
            );
            drop(st);
            self.fail(tid, msg);
        }
        let cap = st.trace_cap;
        if st.trace.len() == cap {
            st.trace.pop_front();
        }
        st.trace.push_back(format!("t{tid}: {label}"));
        self.pick_next(&mut st, tid);
        self.wait_for_turn(st, tid);
    }

    /// Blocks the calling thread on `resource` until some other thread
    /// calls [`Execution::unblock`] on it.
    pub(crate) fn block_on(&self, tid: usize, resource: u64, label: &str) {
        let mut st = self.lock();
        if st.abort {
            drop(st);
            panic::panic_any(AbortToken);
        }
        let cap = st.trace_cap;
        if st.trace.len() == cap {
            st.trace.pop_front();
        }
        st.trace.push_back(format!("t{tid}: blocked on {label}"));
        st.statuses[tid] = Status::Blocked(resource);
        self.pick_next(&mut st, tid);
        self.wait_for_turn(st, tid);
    }

    /// Marks every thread blocked on `resource` runnable again. The
    /// release itself happened under the caller's exclusivity; the woken
    /// threads only actually run once the scheduler picks them.
    pub(crate) fn unblock(&self, resource: u64) {
        let mut st = self.lock();
        for s in st.statuses.iter_mut() {
            if *s == Status::Blocked(resource) {
                *s = Status::Runnable;
            }
        }
    }

    /// Registers a new model thread and returns its id. The OS thread is
    /// spawned lazily by the scheduler loop of the *orchestrator*? No —
    /// spawned here, parked until first chosen.
    pub(crate) fn spawn_thread(self: &Arc<Self>, body: Box<dyn FnOnce() + Send>) -> usize {
        let tid = {
            let mut st = self.lock();
            let tid = st.statuses.len();
            st.statuses.push(Status::Runnable);
            st.held_ranks.push(Vec::new());
            st.spawn_bodies.push(Some(body));
            let pri = match &mut st.ctrl {
                Ctrl::Random { rng } => rng.next_u64(),
                Ctrl::Dfs { .. } => 0,
            };
            st.priorities.push(pri);
            tid
        };
        let exec = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("typhoon-check-t{tid}"))
            .spawn(move || {
                let body = {
                    let mut st = exec.lock();
                    st.spawn_bodies[tid].take()
                };
                if let Some(body) = body {
                    run_model_thread(&exec, tid, body);
                }
            })
            .expect("spawn model thread");
        self.lock().os_handles.push(handle);
        tid
    }

    /// Rank-discipline bookkeeping mirrored from `typhoon-diag`: acquiring
    /// a ranked lock while holding one of equal or higher rank is reported
    /// as a failure (instead of a debug-build panic).
    pub(crate) fn push_rank(&self, tid: usize, rank: u16, name: &'static str) {
        let violation = {
            let mut st = self.lock();
            let v = if rank != 0 {
                st.held_ranks[tid]
                    .iter()
                    .filter(|(r, _)| *r != 0)
                    .max_by_key(|(r, _)| *r)
                    .filter(|(r, _)| *r >= rank)
                    .map(|(r, n)| {
                        format!(
                            "lock-order inversion: acquiring `{name}` (rank {rank}) while \
                         holding `{n}` (rank {r})"
                        )
                    })
            } else {
                None
            };
            st.held_ranks[tid].push((rank, name));
            v
        };
        if let Some(msg) = violation {
            self.fail(tid, msg);
        }
    }

    pub(crate) fn pop_rank(&self, tid: usize, name: &'static str) {
        let mut st = self.lock();
        if let Some(idx) = st.held_ranks[tid].iter().rposition(|(_, n)| *n == name) {
            st.held_ranks[tid].remove(idx);
        }
    }

    /// True once model thread `tid` has finished (used by `join`).
    pub(crate) fn thread_finished(&self, tid: usize) -> bool {
        self.lock().statuses[tid] == Status::Finished
    }

    /// Picks the next thread to run. Must be called with the state lock
    /// held by `st`; updates `st.current`.
    fn pick_next(&self, st: &mut ExecState, tid: usize) {
        let enabled: Vec<usize> = st
            .statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            let all_finished = st.statuses.iter().all(|s| *s == Status::Finished);
            if !all_finished && st.failure.is_none() {
                let blocked: Vec<String> = st
                    .statuses
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, Status::Blocked(_)))
                    .map(|(i, _)| format!("t{i}"))
                    .collect();
                st.failure = Some(format!(
                    "deadlock: every live thread is blocked ({})",
                    blocked.join(", ")
                ));
                st.abort = true;
            }
            // Nothing to run: wake everyone (blocked threads observe the
            // abort, the orchestrator observes completion).
            self.cv.notify_all();
            return;
        }
        let prev = st.current;
        // Preemption bound: once the budget is spent, a still-runnable
        // previous thread keeps running.
        let enabled = if st.preemptions >= st.max_preemptions && enabled.contains(&prev) {
            vec![prev]
        } else {
            enabled
        };
        let depth = st.choices.len();
        let chosen_idx = match &mut st.ctrl {
            Ctrl::Dfs { prefix } => {
                if depth < prefix.len() {
                    let idx = prefix[depth];
                    assert!(
                        idx < enabled.len(),
                        "typhoon-check internal: non-deterministic replay \
                         (depth {depth}, idx {idx}, enabled {enabled:?})"
                    );
                    idx
                } else {
                    // Prefer continuing the previous thread (fewest
                    // preemptions explored first).
                    enabled.iter().position(|&t| t == prev).unwrap_or(0)
                }
            }
            Ctrl::Random { rng } => {
                // PCT-lite: run the highest-priority enabled thread; with
                // probability 1/8 this decision is a priority-change
                // point that demotes the chosen thread afterwards.
                let chosen = enabled
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, &t)| st.priorities[t])
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                if rng.gen_range(0..8u32) == 0 {
                    let min = st.priorities.iter().min().copied().unwrap_or(0);
                    st.priorities[enabled[chosen]] = min.saturating_sub(1);
                }
                chosen
            }
        };
        let chosen = enabled[chosen_idx];
        st.choices.push(ChoicePoint {
            enabled: enabled.clone(),
            chosen: chosen_idx,
        });
        if chosen != prev && enabled.contains(&prev) {
            st.preemptions += 1;
        }
        st.current = chosen;
        let _ = tid;
        self.cv.notify_all();
    }

    /// Parks the calling thread until it is the current runnable thread
    /// (or the execution aborts).
    fn wait_for_turn(&self, mut st: std::sync::MutexGuard<'_, ExecState>, tid: usize) {
        loop {
            if st.abort {
                drop(st);
                panic::panic_any(AbortToken);
            }
            if st.current == tid && st.statuses[tid] == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Thread exit: mark finished, surface panics, hand control onward.
    fn finish(&self, tid: usize, outcome: Result<(), Box<dyn std::any::Any + Send>>) {
        let mut st = self.lock();
        st.statuses[tid] = Status::Finished;
        match outcome {
            Ok(()) => {}
            Err(payload) => {
                if payload.downcast_ref::<AbortToken>().is_none() {
                    let message = if let Some(s) = payload.downcast_ref::<&str>() {
                        (*s).to_owned()
                    } else if let Some(s) = payload.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "<non-string panic payload>".to_owned()
                    };
                    if st.failure.is_none() {
                        st.failure = Some(format!("t{tid} panicked: {message}"));
                    }
                    st.abort = true;
                }
            }
        }
        // Wake joiners of this thread.
        let res = thread_exit_resource(tid);
        for s in st.statuses.iter_mut() {
            if *s == Status::Blocked(res) {
                *s = Status::Runnable;
            }
        }
        self.pick_next(&mut st, tid);
    }
}

/// Resource id a `JoinHandle` blocks on (distinct from shim-allocated ids,
/// which start at 1 and grow; exit resources live in the top half).
pub(crate) fn thread_exit_resource(tid: usize) -> u64 {
    (1u64 << 48) + tid as u64
}

fn run_model_thread(exec: &Arc<Execution>, tid: usize, body: Box<dyn FnOnce() + Send>) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((Arc::clone(exec), tid)));
    // Park until first scheduled.
    {
        let st = exec.lock();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.wait_for_turn(st, tid);
        }));
        if result.is_err() {
            // Aborted before ever running.
            exec.finish(tid, Ok(()));
            CONTEXT.with(|c| *c.borrow_mut() = None);
            return;
        }
    }
    let outcome = panic::catch_unwind(AssertUnwindSafe(body));
    // An abort unwind is not a new failure; pass it through as clean.
    let outcome = match outcome {
        Err(p) if p.downcast_ref::<AbortToken>().is_some() => Ok(()),
        other => other,
    };
    exec.finish(tid, outcome);
    CONTEXT.with(|c| *c.borrow_mut() = None);
}

// ------------------------------------------------------------------ checker

/// How a failing schedule can be reproduced.
#[derive(Debug, Clone)]
pub enum Replay {
    /// Deterministic DFS choice sequence (indices into the enabled set at
    /// each schedule point).
    Trace(Vec<usize>),
    /// Seed of a randomized schedule: `CHECK_SEED=<seed>` replays it.
    Seed(u64),
}

/// A schedule that violated an invariant (assertion, deadlock, rank
/// inversion, …).
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong (panic message / deadlock description).
    pub message: String,
    /// The last schedule-point labels before the failure, oldest first.
    pub trace: Vec<String>,
    /// How to reproduce this exact schedule.
    pub replay: Replay,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        writeln!(f, "schedule tail:")?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        match &self.replay {
            Replay::Trace(t) => write!(
                f,
                "replay: CHECK_TRACE={} (deterministic DFS schedule)",
                t.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            Replay::Seed(s) => write!(f, "replay: CHECK_SEED={s}"),
        }
    }
}

/// Outcome of exploring one kernel.
#[derive(Debug)]
pub struct CheckReport {
    /// Kernel name as passed to [`Checker::check`].
    pub name: String,
    /// Number of schedules executed (DFS + random).
    pub schedules: usize,
    /// True when the bounded DFS visited the *entire* choice tree.
    pub exhausted: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

impl CheckReport {
    /// Panics with a replayable report when a failure was found.
    pub fn assert_ok(&self) {
        if let Some(failure) = &self.failure {
            panic!(
                "typhoon-check: kernel `{}` failed after {} schedule(s):\n{failure}",
                self.name, self.schedules
            );
        }
    }

    /// Returns the failure, panicking when the kernel unexpectedly passed
    /// (used by the regression tests that pin known-bad pre-fix logic).
    pub fn expect_failure(self) -> Failure {
        match self.failure {
            Some(f) => f,
            None => panic!(
                "typhoon-check: kernel `{}` passed {} schedule(s) but a failure was \
                 expected (pre-fix logic should violate its invariant)",
                self.name, self.schedules
            ),
        }
    }
}

/// Configuration for exploring one kernel. The defaults suit the small
/// extracted kernels in [`crate::kernels`]: exhaustive up to 2 preemptions,
/// then a seeded random phase.
#[derive(Debug, Clone)]
pub struct Checker {
    /// Preemption bound for the exhaustive DFS phase.
    pub max_preemptions: usize,
    /// Schedule budget for the DFS phase; when the bounded tree is bigger
    /// than this, exploration falls back to the random phase.
    pub max_schedules: usize,
    /// Number of seeded random schedules in the fallback phase.
    pub random_schedules: usize,
    /// Per-execution schedule-point budget (livelock guard).
    pub max_steps: usize,
    /// Base seed for the random phase; run `i` uses `base_seed + i`.
    /// Overridable via `CHECK_BASE_SEED`.
    pub base_seed: u64,
    /// Schedule-point labels retained for failure reports.
    pub trace_tail: usize,
}

impl Default for Checker {
    fn default() -> Self {
        let base_seed = std::env::var("CHECK_BASE_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0xC0FFEE);
        Checker {
            max_preemptions: 2,
            max_schedules: 20_000,
            random_schedules: 2_000,
            max_steps: 20_000,
            base_seed,
            trace_tail: 32,
        }
    }
}

impl Checker {
    /// A checker with the given preemption bound and default budgets.
    pub fn with_preemption_bound(bound: usize) -> Self {
        Checker {
            max_preemptions: bound,
            ..Checker::default()
        }
    }

    fn run_once(&self, ctrl: Ctrl, body: &Arc<dyn Fn() + Send + Sync>) -> ExecOutcome {
        let exec = Arc::new(Execution {
            state: Mutex::new(ExecState {
                statuses: Vec::new(),
                current: 0,
                ctrl,
                choices: Vec::new(),
                preemptions: 0,
                max_preemptions: self.max_preemptions,
                steps: 0,
                max_steps: self.max_steps,
                next_resource: 0,
                priorities: Vec::new(),
                held_ranks: Vec::new(),
                failure: None,
                abort: false,
                trace: VecDeque::new(),
                trace_cap: self.trace_tail,
                spawn_bodies: Vec::new(),
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        let body = Arc::clone(body);
        exec.spawn_thread(Box::new(move || body()));
        // Wait until every model thread finished.
        {
            let mut st = exec.lock();
            while !st.statuses.iter().all(|s| *s == Status::Finished) {
                st = exec.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Join the OS threads so nothing outlives the execution.
        let handles = std::mem::take(&mut exec.lock().os_handles);
        for h in handles {
            let _ = h.join();
        }
        let st = exec.lock();
        ExecOutcome {
            failure: st.failure.clone(),
            trace: st.trace.iter().cloned().collect(),
            choices: st.choices.clone(),
        }
    }

    /// Explores `body` and returns a report. `body` is run once per
    /// schedule; it must create its shared state fresh each run and spawn
    /// its threads through [`crate::sync::thread::spawn`].
    pub fn check<F>(&self, name: &str, body: F) -> CheckReport
    where
        F: Fn() + Send + Sync + 'static,
    {
        let body: Arc<dyn Fn() + Send + Sync> = Arc::new(body);

        // Replay modes trump exploration: CHECK_SEED / CHECK_TRACE run
        // exactly one schedule.
        if let Ok(seed) = std::env::var("CHECK_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                let out = self.run_once(
                    Ctrl::Random {
                        rng: SmallRng::seed_from_u64(seed),
                    },
                    &body,
                );
                return report(name, 1, false, out, || Replay::Seed(seed));
            }
        }
        if let Ok(trace) = std::env::var("CHECK_TRACE") {
            let prefix: Vec<usize> = trace.split(',').filter_map(|c| c.parse().ok()).collect();
            let shown = prefix.clone();
            let out = self.run_once(Ctrl::Dfs { prefix }, &body);
            return report(name, 1, false, out, move || Replay::Trace(shown.clone()));
        }

        // Phase 1: bounded exhaustive DFS.
        let mut prefix: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut exhausted = false;
        loop {
            if schedules >= self.max_schedules {
                break;
            }
            let out = self.run_once(
                Ctrl::Dfs {
                    prefix: prefix.clone(),
                },
                &body,
            );
            schedules += 1;
            if out.failure.is_some() {
                let choices: Vec<usize> = out.choices.iter().map(|c| c.chosen).collect();
                return report(name, schedules, false, out, move || {
                    Replay::Trace(choices.clone())
                });
            }
            // Advance to the next unexplored branch: bump the deepest
            // choice with untried alternatives, drop everything after it.
            match next_prefix(&out.choices) {
                Some(next) => prefix = next,
                None => {
                    exhausted = true;
                    break;
                }
            }
        }

        // Phase 2: seeded random fallback when the tree was too big.
        if !exhausted {
            for i in 0..self.random_schedules {
                let seed = self.base_seed.wrapping_add(i as u64);
                let out = self.run_once(
                    Ctrl::Random {
                        rng: SmallRng::seed_from_u64(seed),
                    },
                    &body,
                );
                schedules += 1;
                if out.failure.is_some() {
                    return report(name, schedules, false, out, move || Replay::Seed(seed));
                }
            }
        }

        CheckReport {
            name: name.to_owned(),
            schedules,
            exhausted,
            failure: None,
        }
    }
}

struct ExecOutcome {
    failure: Option<String>,
    trace: Vec<String>,
    choices: Vec<ChoicePoint>,
}

fn report(
    name: &str,
    schedules: usize,
    exhausted: bool,
    out: ExecOutcome,
    replay: impl Fn() -> Replay,
) -> CheckReport {
    CheckReport {
        name: name.to_owned(),
        schedules,
        exhausted,
        failure: out.failure.map(|message| Failure {
            message,
            trace: out.trace,
            replay: replay(),
        }),
    }
}

/// Computes the DFS successor of a completed schedule: the deepest choice
/// point with an untried alternative, advanced by one. `None` when the
/// whole bounded tree has been visited.
fn next_prefix(choices: &[ChoicePoint]) -> Option<Vec<usize>> {
    for depth in (0..choices.len()).rev() {
        let cp = &choices[depth];
        if cp.chosen + 1 < cp.enabled.len() {
            let mut prefix: Vec<usize> = choices[..depth].iter().map(|c| c.chosen).collect();
            prefix.push(cp.chosen + 1);
            return Some(prefix);
        }
    }
    None
}
