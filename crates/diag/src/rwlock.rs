//! Instrumented reader-writer lock.

use crate::LockRank;
use std::sync::{self, PoisonError};

#[cfg(debug_assertions)]
use crate::debug_state;
#[cfg(debug_assertions)]
use crate::mutex::GuardMeta;
#[cfg(debug_assertions)]
use std::panic::Location;
#[cfg(debug_assertions)]
use std::sync::atomic::AtomicU64;
#[cfg(debug_assertions)]
use std::time::Instant;

/// Non-poisoning reader-writer lock with debug-build deadlock
/// instrumentation. Counterpart of [`crate::DiagMutex`]; see the crate
/// docs for the enforced discipline.
pub struct DiagRwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u16,
    #[cfg(debug_assertions)]
    name: &'static str,
    #[cfg(debug_assertions)]
    id: AtomicU64,
    inner: sync::RwLock<T>,
}

impl<T> DiagRwLock<T> {
    /// An unranked, anonymous lock (no rank-order checking).
    pub const fn new(value: T) -> Self {
        Self::with_rank(LockRank::UNRANKED, "<anon>", value)
    }

    /// A named lock participating in the documented rank hierarchy.
    pub const fn with_rank(rank: LockRank, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        {
            let _ = (rank, name);
        }
        DiagRwLock {
            #[cfg(debug_assertions)]
            rank: rank.0,
            #[cfg(debug_assertions)]
            name,
            #[cfg(debug_assertions)]
            id: AtomicU64::new(0),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> DiagRwLock<T> {
    #[cfg(debug_assertions)]
    #[track_caller]
    fn enter(&self, exclusive: bool) -> GuardMeta {
        let id = debug_state::assign_lock_id(&self.id);
        debug_state::check_and_push(id, self.rank, self.name, exclusive);
        GuardMeta {
            lock_id: id,
            name: self.name,
            acquired_at: Location::caller(),
            acquired: Instant::now(),
        }
    }

    /// Acquires shared read access.
    #[cfg_attr(debug_assertions, track_caller)]
    pub fn read(&self) -> DiagRwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let meta = self.enter(false);
        let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        DiagRwLockReadGuard {
            guard,
            #[cfg(debug_assertions)]
            meta,
        }
    }

    /// Acquires exclusive write access.
    #[cfg_attr(debug_assertions, track_caller)]
    pub fn write(&self) -> DiagRwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let meta = self.enter(true);
        let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        DiagRwLockWriteGuard {
            guard,
            #[cfg(debug_assertions)]
            meta,
        }
    }

    /// Attempts shared read access without blocking.
    #[cfg_attr(debug_assertions, track_caller)]
    pub fn try_read(&self) -> Option<DiagRwLockReadGuard<'_, T>> {
        let guard = match self.inner.try_read() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let meta = self.enter(false);
        Some(DiagRwLockReadGuard {
            guard,
            #[cfg(debug_assertions)]
            meta,
        })
    }

    /// Attempts exclusive write access without blocking.
    #[cfg_attr(debug_assertions, track_caller)]
    pub fn try_write(&self) -> Option<DiagRwLockWriteGuard<'_, T>> {
        let guard = match self.inner.try_write() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let meta = self.enter(true);
        Some(DiagRwLockWriteGuard {
            guard,
            #[cfg(debug_assertions)]
            meta,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for DiagRwLock<T> {
    fn default() -> Self {
        DiagRwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for DiagRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("DiagRwLock");
        #[cfg(debug_assertions)]
        s.field("name", &self.name).field("rank", &self.rank);
        match self.inner.try_read() {
            Ok(v) => s.field("data", &&*v).finish(),
            Err(_) => s.field("data", &"<locked>").finish(),
        }
    }
}

/// Guard returned by [`DiagRwLock::read`].
pub struct DiagRwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    meta: GuardMeta,
}

impl<T: ?Sized> std::ops::Deref for DiagRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for DiagRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.meta.release();
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for DiagRwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// Guard returned by [`DiagRwLock::write`].
pub struct DiagRwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    meta: GuardMeta,
}

impl<T: ?Sized> std::ops::Deref for DiagRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for DiagRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for DiagRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.meta.release();
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for DiagRwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}
