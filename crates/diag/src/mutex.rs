//! Instrumented mutex.

use crate::LockRank;
use std::sync::{self, PoisonError};

#[cfg(debug_assertions)]
use crate::debug_state;
#[cfg(debug_assertions)]
use std::panic::Location;
#[cfg(debug_assertions)]
use std::sync::atomic::AtomicU64;
#[cfg(debug_assertions)]
use std::time::Instant;

/// Non-poisoning mutex with debug-build deadlock instrumentation.
///
/// See the crate docs for the discipline this enforces. In release builds
/// this is a transparent wrapper over [`std::sync::Mutex`] whose only
/// behavioural difference is that poisoning is recovered instead of
/// propagated: a panicked holder cannot wedge other threads.
pub struct DiagMutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    rank: u16,
    #[cfg(debug_assertions)]
    name: &'static str,
    #[cfg(debug_assertions)]
    id: AtomicU64,
    inner: sync::Mutex<T>,
}

impl<T> DiagMutex<T> {
    /// An unranked, anonymous lock: re-entrancy and watchdog checks apply,
    /// rank-order checking does not.
    pub const fn new(value: T) -> Self {
        Self::with_rank(LockRank::UNRANKED, "<anon>", value)
    }

    /// A named lock participating in the documented rank hierarchy.
    pub const fn with_rank(rank: LockRank, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        {
            let _ = (rank, name);
        }
        DiagMutex {
            #[cfg(debug_assertions)]
            rank: rank.0,
            #[cfg(debug_assertions)]
            name,
            #[cfg(debug_assertions)]
            id: AtomicU64::new(0),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> DiagMutex<T> {
    /// Acquires the lock, blocking the current thread.
    ///
    /// Debug builds panic on re-entrant acquisition and rank-order
    /// inversion; a poisoned lock is recovered, never propagated.
    #[cfg_attr(debug_assertions, track_caller)]
    pub fn lock(&self) -> DiagMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let meta = {
            let id = debug_state::assign_lock_id(&self.id);
            debug_state::check_and_push(id, self.rank, self.name, true);
            GuardMeta {
                lock_id: id,
                name: self.name,
                acquired_at: Location::caller(),
                acquired: Instant::now(),
            }
        };
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        DiagMutexGuard {
            guard,
            #[cfg(debug_assertions)]
            meta,
        }
    }

    /// Attempts the lock without blocking.
    #[cfg_attr(debug_assertions, track_caller)]
    pub fn try_lock(&self) -> Option<DiagMutexGuard<'_, T>> {
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(sync::TryLockError::WouldBlock) => return None,
        };
        #[cfg(debug_assertions)]
        let meta = {
            let id = debug_state::assign_lock_id(&self.id);
            debug_state::check_and_push(id, self.rank, self.name, true);
            GuardMeta {
                lock_id: id,
                name: self.name,
                acquired_at: Location::caller(),
                acquired: Instant::now(),
            }
        };
        Some(DiagMutexGuard {
            guard,
            #[cfg(debug_assertions)]
            meta,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for DiagMutex<T> {
    fn default() -> Self {
        DiagMutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for DiagMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("DiagMutex");
        #[cfg(debug_assertions)]
        s.field("name", &self.name).field("rank", &self.rank);
        match self.inner.try_lock() {
            Ok(v) => s.field("data", &&*v).finish(),
            Err(_) => s.field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(debug_assertions)]
pub(crate) struct GuardMeta {
    pub lock_id: u64,
    pub name: &'static str,
    pub acquired_at: &'static Location<'static>,
    pub acquired: Instant,
}

#[cfg(debug_assertions)]
impl GuardMeta {
    pub fn release(&self) {
        debug_state::pop(self.lock_id);
        let nanos = self.acquired.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        debug_state::observe_hold(self.name, self.acquired_at, nanos);
    }
}

/// Guard returned by [`DiagMutex::lock`].
pub struct DiagMutexGuard<'a, T: ?Sized> {
    guard: sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    meta: GuardMeta,
}

impl<T: ?Sized> std::ops::Deref for DiagMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for DiagMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl<T: ?Sized> Drop for DiagMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.meta.release();
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for DiagMutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}
