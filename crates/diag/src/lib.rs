//! # typhoon-diag — deadlock and race instrumentation for Typhoon's locks
//!
//! Typhoon's dataplane is concurrency-heavy: SPSC rings, refcounted
//! broadcast payloads, ZooKeeper-style watches, and a controller that
//! reconfigures running workers. A single mis-ordered lock acquisition can
//! deadlock the whole pipeline, and a lock held across tunnel I/O silently
//! destroys the tail latencies the paper's Figs. 8–14 measure.
//!
//! This crate provides drop-in lock wrappers that enforce the workspace's
//! lock discipline **in debug builds** and compile to zero-overhead
//! pass-throughs in release builds:
//!
//! * [`DiagMutex`] / [`DiagRwLock`] — non-poisoning wrappers over
//!   `std::sync` locks. A panic while holding a lock never wedges other
//!   threads (the poison flag is cleared on the next acquisition).
//! * **Lock ranks** ([`LockRank`], [`rank`]) — each major lock carries a
//!   documented rank; acquiring a ranked lock while holding one of equal
//!   or higher rank panics with *both* acquisition sites. Rank-ordered
//!   acquisition makes cycles (⇒ deadlocks) impossible among ranked locks.
//! * **Re-entrancy detection** — re-acquiring a lock the current thread
//!   already holds (a guaranteed self-deadlock for `std::sync::Mutex`)
//!   panics immediately with both sites instead of hanging.
//! * **Held-too-long watchdog** — guards time their critical section; a
//!   hold longer than [`hold_threshold`] is counted in the shared
//!   [`typhoon_metrics::Registry`] returned by [`registry`] (counter
//!   `diag.lock.held_too_long`, histogram `diag.lock.hold_ns`) and logged
//!   to stderr, naming the lock and the acquisition site.
//!
//! The rank hierarchy adopted by the workspace is documented in
//! `docs/CONCURRENCY.md` and encoded in [`rank`]. Rule of thumb: **outer
//! layers rank low, inner layers rank high**, and a thread may only
//! acquire locks in strictly increasing rank order.
//!
//! In release builds (`cfg(not(debug_assertions))`) the wrappers contain
//! exactly a `std::sync` lock — no registration, no thread-local
//! bookkeeping, no timing — so the hot paths measured by `benches/micro.rs`
//! are unaffected.

#![warn(missing_docs)]

use std::sync::{Mutex, OnceLock};
use typhoon_metrics::Registry;

mod mutex;
mod rwlock;

pub use mutex::{DiagMutex, DiagMutexGuard};
pub use rwlock::{DiagRwLock, DiagRwLockReadGuard, DiagRwLockWriteGuard};

/// A panic captured from a supervised thread (see [`spawn_supervised`]).
#[derive(Debug, Clone)]
pub struct PanicEvent {
    /// The thread's name as passed to [`spawn_supervised`].
    pub thread: String,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim,
    /// anything else as an opaque marker).
    pub message: String,
}

fn panic_log() -> &'static Mutex<Vec<PanicEvent>> {
    static LOG: OnceLock<Mutex<Vec<PanicEvent>>> = OnceLock::new();
    LOG.get_or_init(|| Mutex::new(Vec::new()))
}

/// All panics captured by [`spawn_supervised`] so far, oldest first.
pub fn panic_events() -> Vec<PanicEvent> {
    panic_log().lock().map(|l| l.clone()).unwrap_or_default()
}

/// Spawns a named thread whose panics are *captured*, never silently
/// swallowed: a panic is stringified, appended to the process-wide panic
/// log ([`panic_events`]), counted in [`registry`] under
/// `diag.thread.panics` (plus a per-thread counter), and handed to
/// `on_panic` so the embedder can surface it as a fault event.
///
/// This is the workspace-mandated replacement for raw `thread::spawn` in
/// the long-running layers (`typhoon-core`, `typhoon-switch`) — enforced
/// by `typhoon-lint` rule TL006. A worker thread that panics must become
/// a *detectable* fault (dead switch port → `PortStatus` delete →
/// recovery), not a silent dead thread.
pub fn spawn_supervised<F, H>(name: &str, on_panic: H, body: F) -> std::thread::JoinHandle<()>
where
    F: FnOnce() + Send + 'static,
    H: FnOnce(&PanicEvent) + Send + 'static,
{
    let thread_name = name.to_owned();
    std::thread::Builder::new()
        .name(thread_name.clone())
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
            if let Err(payload) = result {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_owned()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "<non-string panic payload>".to_owned()
                };
                let event = PanicEvent {
                    thread: thread_name.clone(),
                    message,
                };
                registry().counter("diag.thread.panics").inc();
                registry()
                    .counter(&format!("diag.thread.panics.{thread_name}"))
                    .inc();
                eprintln!(
                    "typhoon-diag: supervised thread `{}` panicked: {}",
                    event.thread, event.message
                );
                if let Ok(mut log) = panic_log().lock() {
                    log.push(event.clone());
                }
                on_panic(&event);
            }
        })
        .expect("spawn supervised thread")
}

/// Acquisition-order rank of a lock. Threads must acquire ranked locks in
/// strictly increasing rank order; rank `0` (`LockRank::UNRANKED`) opts a
/// lock out of order checking (re-entrancy and watchdog checks still
/// apply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockRank(pub u16);

impl LockRank {
    /// Excluded from rank-order checking.
    pub const UNRANKED: LockRank = LockRank(0);
}

/// The workspace lock-rank hierarchy (documented in `docs/CONCURRENCY.md`).
///
/// Outer control-plane layers rank low; inner data-plane layers rank
/// high. A thread holding `CLUSTER` may take `COORD_STORE`, never the
/// reverse.
pub mod rank {
    use super::LockRank;

    /// `typhoon-core` `cluster.rs` — outermost supervisor state.
    pub const CLUSTER: LockRank = LockRank(100);
    /// `typhoon-core` `cluster.rs` — manager-loop join handle.
    pub const CLUSTER_MANAGER: LockRank = LockRank(110);
    /// `typhoon-core` `manager.rs` — application-id allocator.
    pub const CORE_APP_IDS: LockRank = LockRank(120);
    /// `typhoon-core` `manager.rs` — failure-detector suspect map; held
    /// across coordinator calls, so it must stay below `COORD_GLOBAL`.
    pub const CORE_SUSPECTS: LockRank = LockRank(130);
    /// `typhoon-core` `manager.rs` — recovery report log.
    pub const CORE_REPORTS: LockRank = LockRank(140);
    /// `typhoon-core` `agent.rs` — per-host worker table.
    pub const AGENT_WORKERS: LockRank = LockRank(150);
    /// `typhoon-storm` `nimbus.rs` — topology master state.
    pub const NIMBUS: LockRank = LockRank(200);
    /// `typhoon-storm` `nimbus.rs` — application-id allocator.
    pub const NIMBUS_APP_IDS: LockRank = LockRank(210);
    /// `typhoon-storm` `nimbus.rs` — task-id range allocator.
    pub const NIMBUS_TASK_IDS: LockRank = LockRank(215);
    /// `typhoon-storm` `nimbus.rs` — monitor-thread join handle.
    pub const NIMBUS_MONITOR: LockRank = LockRank(220);
    /// `typhoon-storm` `nimbus.rs` — per-topology shutdown flags; held
    /// while pruning heartbeats in `kill`, so it stays below
    /// `NIMBUS_HEARTBEATS`.
    pub const TOPO_SHUTDOWNS: LockRank = LockRank(230);
    /// `typhoon-storm` `nimbus.rs` — per-topology restart counters.
    pub const TOPO_RESTARTS: LockRank = LockRank(235);
    /// `typhoon-storm` `nimbus.rs` — per-topology rate meters.
    pub const TOPO_METERS: LockRank = LockRank(240);
    /// `typhoon-storm` `nimbus.rs` — per-topology metric registries.
    pub const TOPO_REGISTRIES: LockRank = LockRank(245);
    /// `typhoon-storm` `nimbus.rs` — input-rate cell map; held while
    /// locking the inner cell, so it stays below `EXEC_RATE_CELL`.
    pub const TOPO_INPUT_RATES: LockRank = LockRank(250);
    /// `typhoon-storm` `nimbus.rs` — debug-mirror cell map; held while
    /// locking the inner cell, so it stays below `EXEC_MIRROR_CELL`.
    pub const TOPO_MIRRORS: LockRank = LockRank(255);
    /// `typhoon-storm` — worker heartbeat map (nimbus + executors).
    pub const NIMBUS_HEARTBEATS: LockRank = LockRank(260);
    /// `typhoon-storm` `executor.rs` — per-executor input-rate cell.
    pub const EXEC_RATE_CELL: LockRank = LockRank(270);
    /// `typhoon-storm` `executor.rs` — per-executor debug-mirror cell.
    pub const EXEC_MIRROR_CELL: LockRank = LockRank(275);
    /// `typhoon-storm` `transport.rs` — outbound TCP connection cache.
    pub const TRANSPORT_CONNS: LockRank = LockRank(290);
    /// `typhoon-controller` `controller.rs` — registered app list; held
    /// across app callbacks that re-enter the controller and write
    /// coordination state, so it stays below `COORD_GLOBAL`.
    pub const CTRL_APPS: LockRank = LockRank(295);
    /// `typhoon-coordinator` `global.rs` — coordination service façade.
    pub const COORD_GLOBAL: LockRank = LockRank(300);
    /// `typhoon-controller` `ha.rs` — replicated-control-plane state
    /// (current leader, replica roster, switch handles). Ranked below
    /// `COORD_STORE` so leadership bookkeeping may consult the
    /// coordinator while held.
    pub const CTRL_HA: LockRank = LockRank(380);
    /// `typhoon-controller` `ha.rs` — the write-through rule ledger.
    /// Ranked below `COORD_STORE` so a ledger flush may write the
    /// persisted blob to the coordinator while held.
    pub const CTRL_LEDGER: LockRank = LockRank(390);
    /// `typhoon-coordinator` `store.rs` — znode tree + watches.
    pub const COORD_STORE: LockRank = LockRank(400);
    /// `typhoon-controller` `controller.rs` — port-stats cache.
    pub const CTRL_PORT_STATS: LockRank = LockRank(470);
    /// `typhoon-controller` `controller.rs` — flow-stats cache.
    pub const CTRL_FLOW_STATS: LockRank = LockRank(475);
    /// `typhoon-controller` `controller.rs` — per-switch depacketizers.
    pub const CTRL_DEPACKETIZERS: LockRank = LockRank(480);
    /// `typhoon-controller` `controller.rs` — barrier reply waiters.
    pub const CTRL_BARRIER_WAITERS: LockRank = LockRank(490);
    /// `typhoon-controller` `controller.rs` — SDN controller state.
    pub const CONTROLLER: LockRank = LockRank(500);
    /// `typhoon-switch` `datapath.rs` — software switch state.
    pub const DATAPATH: LockRank = LockRank(600);
    /// `typhoon-switch` `datapath.rs` — wire-port table.
    pub const DP_PORTS: LockRank = LockRank(610);
    /// `typhoon-switch` `datapath.rs` — group table.
    pub const DP_GROUPS: LockRank = LockRank(620);
    /// `typhoon-switch` `datapath.rs` — tuple-trace recorder.
    pub const DP_TRACE: LockRank = LockRank(630);
    /// `typhoon-switch` `datapath.rs` — flow-expiry clock.
    pub const DP_EXPIRE: LockRank = LockRank(640);
    /// `typhoon-switch` `datapath.rs` — tunnel map; held across
    /// `Tunnel::send`/`recv_batch`, so it stays below `CHAOS_STATE` and
    /// `TUNNEL`.
    pub const DP_TUNNELS: LockRank = LockRank(650);
    /// `typhoon-switch` `datapath.rs` — the controller link (channel
    /// endpoints, fencing term, headless event queue). A leaf among the
    /// datapath locks: every other `DP_*` lock may be held when a frame
    /// or event reaches the link, and the link never takes them back.
    pub const DP_CTRL: LockRank = LockRank(655);
    /// `typhoon-net` `fault.rs` — fault-injector state; held across
    /// inner tunnel sends, so it sits between `DP_TUNNELS` and `TUNNEL`.
    pub const CHAOS_STATE: LockRank = LockRank(660);
    /// `typhoon-net` — tunnels and rings (innermost, leaf I/O).
    pub const TUNNEL: LockRank = LockRank(700);
}

/// Shared diagnostics metric registry. The held-too-long watchdog reports
/// here; embedders can merge it into their own metric collection.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(debug_assertions)]
pub(crate) mod debug_state {
    //! Debug-build bookkeeping: lock identities, per-thread held stacks,
    //! and the watchdog threshold.

    use std::cell::RefCell;
    use std::panic::Location;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Monotonic lock-instance id source (0 = unassigned).
    static NEXT_LOCK_ID: AtomicU64 = AtomicU64::new(1);

    /// Watchdog threshold in nanoseconds.
    static HOLD_THRESHOLD_NANOS: AtomicU64 = AtomicU64::new(100_000_000);

    pub fn hold_threshold_nanos() -> u64 {
        HOLD_THRESHOLD_NANOS.load(Ordering::Relaxed)
    }

    pub fn set_hold_threshold_nanos(nanos: u64) {
        HOLD_THRESHOLD_NANOS.store(nanos, Ordering::Relaxed);
    }

    pub fn assign_lock_id(slot: &AtomicU64) -> u64 {
        let existing = slot.load(Ordering::Relaxed);
        if existing != 0 {
            return existing;
        }
        let fresh = NEXT_LOCK_ID.fetch_add(1, Ordering::Relaxed);
        match slot.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => fresh,
            Err(winner) => winner,
        }
    }

    /// One lock currently held by this thread.
    #[derive(Clone, Copy)]
    pub struct Held {
        pub lock_id: u64,
        pub rank: u16,
        pub name: &'static str,
        pub acquired_at: &'static Location<'static>,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    /// Checks discipline for an acquisition and records it on the
    /// thread's held stack. Panics on re-entrancy or rank inversion.
    #[track_caller]
    pub fn check_and_push(lock_id: u64, rank: u16, name: &'static str, exclusive: bool) {
        let at = Location::caller();
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for h in held.iter() {
                if h.lock_id == lock_id {
                    // Re-entrant read acquisitions of a RwLock are only a
                    // deadlock risk against a queued writer, but they are a
                    // discipline violation either way; flag them all.
                    let _ = exclusive;
                    panic!(
                        "typhoon-diag: re-entrant acquisition of lock `{}` at {at}; \
                         already held by this thread since {}",
                        name, h.acquired_at
                    );
                }
            }
            if rank != 0 {
                if let Some(h) = held.iter().filter(|h| h.rank != 0).max_by_key(|h| h.rank) {
                    if h.rank >= rank {
                        panic!(
                            "typhoon-diag: lock-order inversion (potential deadlock): \
                             acquiring `{}` (rank {}) at {at} while holding `{}` (rank {}) \
                             acquired at {}; ranked locks must be taken in strictly \
                             increasing rank order (see docs/CONCURRENCY.md)",
                            name, rank, h.name, h.rank, h.acquired_at
                        );
                    }
                }
            }
            held.push(Held {
                lock_id,
                rank,
                name,
                acquired_at: at,
            });
        });
    }

    /// Removes a released lock from the thread's held stack.
    pub fn pop(lock_id: u64) {
        // `try_with`: guards may drop during thread TLS teardown.
        let _ = HELD.try_with(|held| {
            let mut held = held.borrow_mut();
            if let Some(idx) = held.iter().rposition(|h| h.lock_id == lock_id) {
                held.remove(idx);
            }
        });
    }

    /// Watchdog hook: called by guards on drop with the measured hold time.
    pub fn observe_hold(name: &'static str, acquired_at: &'static Location<'static>, nanos: u64) {
        // Cached handle: this runs on every guard drop, so skip the
        // registry name lookup on the hot path.
        static HOLD_HIST: std::sync::OnceLock<typhoon_metrics::Histogram> =
            std::sync::OnceLock::new();
        HOLD_HIST
            .get_or_init(|| crate::registry().histogram("diag.lock.hold_ns"))
            .record(nanos);
        if nanos > hold_threshold_nanos() {
            crate::registry().counter("diag.lock.held_too_long").inc();
            crate::registry()
                .counter(&format!("diag.lock.held_too_long.{name}"))
                .inc();
            eprintln!(
                "typhoon-diag: lock `{name}` held for {:.3}ms (threshold {:.3}ms), \
                 acquired at {acquired_at}",
                nanos as f64 / 1e6,
                hold_threshold_nanos() as f64 / 1e6,
            );
        }
    }
}

/// Sets the held-too-long watchdog threshold (debug builds only; a no-op
/// in release builds). Locks held longer than this are counted in
/// [`registry`] under `diag.lock.held_too_long` and logged to stderr.
pub fn set_hold_threshold(threshold: std::time::Duration) {
    #[cfg(debug_assertions)]
    debug_state::set_hold_threshold_nanos(threshold.as_nanos().min(u64::MAX as u128) as u64);
    #[cfg(not(debug_assertions))]
    let _ = threshold;
}

/// Current held-too-long watchdog threshold (debug builds; release builds
/// report `None` because the watchdog is compiled out).
pub fn hold_threshold() -> Option<std::time::Duration> {
    #[cfg(debug_assertions)]
    {
        Some(std::time::Duration::from_nanos(
            debug_state::hold_threshold_nanos(),
        ))
    }
    #[cfg(not(debug_assertions))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_shared() {
        registry().counter("diag.test.shared").inc();
        assert!(registry().snapshot().counter("diag.test.shared") >= 1);
    }

    #[test]
    fn supervised_spawn_captures_panics() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let notified = Arc::new(AtomicBool::new(false));
        let notified2 = notified.clone();
        let handle = spawn_supervised(
            "diag-test-panicker",
            move |event| {
                assert_eq!(event.thread, "diag-test-panicker");
                assert!(event.message.contains("boom"));
                notified2.store(true, Ordering::Release);
            },
            || panic!("boom in supervised thread"),
        );
        // The panic is contained: join succeeds instead of propagating.
        assert!(handle.join().is_ok());
        assert!(notified.load(Ordering::Acquire));
        assert!(panic_events()
            .iter()
            .any(|e| e.thread == "diag-test-panicker"));
        assert!(registry().snapshot().counter("diag.thread.panics") >= 1);
    }

    #[test]
    fn supervised_spawn_runs_body_normally() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let ran = Arc::new(AtomicBool::new(false));
        let ran2 = ran.clone();
        let handle = spawn_supervised(
            "diag-test-clean",
            |_| panic!("on_panic must not fire for a clean exit"),
            move || ran2.store(true, Ordering::Release),
        );
        assert!(handle.join().is_ok());
        assert!(ran.load(Ordering::Acquire));
    }

    // Compile-time/profile guarantee: in release builds the wrappers are
    // transparent newtypes over std locks; in debug builds they carry
    // instrumentation metadata.
    #[cfg(not(debug_assertions))]
    #[test]
    fn release_wrappers_are_pass_through() {
        use std::mem::size_of;
        assert_eq!(
            size_of::<DiagMutex<u64>>(),
            size_of::<std::sync::Mutex<u64>>()
        );
        assert_eq!(
            size_of::<DiagRwLock<u64>>(),
            size_of::<std::sync::RwLock<u64>>()
        );
        assert!(hold_threshold().is_none());
    }

    #[cfg(debug_assertions)]
    #[test]
    fn debug_wrappers_carry_instrumentation() {
        use std::mem::size_of;
        assert!(size_of::<DiagMutex<u64>>() > size_of::<std::sync::Mutex<u64>>());
        assert!(hold_threshold().is_some());
    }
}
