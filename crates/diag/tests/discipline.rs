//! Lock-discipline enforcement tests for typhoon-diag.
//!
//! The enforcement paths only exist under `cfg(debug_assertions)`; the
//! release-profile run of this file exercises the pass-through behaviour
//! instead (no panics, identical data semantics).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;
use typhoon_diag::{rank, DiagMutex, DiagRwLock, LockRank};

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn ordered_acquisition_is_fine() {
    let low = DiagMutex::with_rank(rank::CLUSTER, "test.low", 1u32);
    let high = DiagMutex::with_rank(rank::DATAPATH, "test.high", 2u32);
    let a = low.lock();
    let b = high.lock();
    assert_eq!(*a + *b, 3);
}

#[test]
fn unranked_locks_skip_order_checking() {
    let a = DiagMutex::new(1u32);
    let b = DiagMutex::new(2u32);
    let ga = a.lock();
    let gb = b.lock();
    assert_eq!(*ga + *gb, 3);
}

#[cfg(debug_assertions)]
#[test]
fn rank_inversion_panics_with_both_sites() {
    let low = DiagMutex::with_rank(rank::NIMBUS, "test.inv.low", ());
    let high = DiagMutex::with_rank(rank::TUNNEL, "test.inv.high", ());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _h = high.lock();
        let _l = low.lock(); // rank 200 while holding rank 700: inversion
    }));
    let msg = panic_message(result.expect_err("inversion must panic"));
    assert!(msg.contains("lock-order inversion"), "msg: {msg}");
    assert!(msg.contains("test.inv.low"), "msg: {msg}");
    assert!(msg.contains("test.inv.high"), "msg: {msg}");
    // Both acquisition sites are file:line locations in this file.
    assert!(msg.matches("discipline.rs").count() >= 2, "msg: {msg}");
}

#[cfg(debug_assertions)]
#[test]
fn equal_rank_also_panics() {
    let a = DiagMutex::with_rank(LockRank(350), "test.eq.a", ());
    let b = DiagMutex::with_rank(LockRank(350), "test.eq.b", ());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _a = a.lock();
        let _b = b.lock(); // equal rank: ambiguous order, also refused
    }));
    let msg = panic_message(result.expect_err("equal-rank nesting must panic"));
    assert!(msg.contains("lock-order inversion"), "msg: {msg}");
}

#[cfg(debug_assertions)]
#[test]
fn reentrant_mutex_panics_instead_of_deadlocking() {
    let m = Arc::new(DiagMutex::new(0u32));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _g1 = m.lock();
        let _g2 = m.lock(); // would self-deadlock on a raw std Mutex
    }));
    let msg = panic_message(result.expect_err("re-entrant lock must panic"));
    assert!(msg.contains("re-entrant acquisition"), "msg: {msg}");
}

#[cfg(debug_assertions)]
#[test]
fn reentrant_rwlock_read_panics() {
    let l = DiagRwLock::with_rank(rank::COORD_STORE, "test.rw", 7u32);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _r1 = l.read();
        let _r2 = l.read(); // deadlocks against a queued writer on std RwLock
    }));
    let msg = panic_message(result.expect_err("re-entrant read must panic"));
    assert!(msg.contains("re-entrant acquisition"), "msg: {msg}");
}

#[test]
fn rwlock_read_then_higher_rank_is_fine() {
    let store = DiagRwLock::with_rank(rank::COORD_STORE, "test.store", 1u32);
    let dp = DiagMutex::with_rank(rank::DATAPATH, "test.dp", 2u32);
    let r = store.read();
    let g = dp.lock();
    assert_eq!(*r + *g, 3);
}

#[test]
fn other_threads_have_independent_stacks() {
    // A lock held on one thread must not affect another thread's checks.
    let low = Arc::new(DiagMutex::with_rank(rank::CLUSTER, "test.t.low", ()));
    let high = Arc::new(DiagMutex::with_rank(rank::DATAPATH, "test.t.high", ()));
    let _h = high.lock();
    let low2 = Arc::clone(&low);
    std::thread::spawn(move || {
        // Fresh thread, empty held stack: taking the low-rank lock is legal.
        let _l = low2.lock();
    })
    .join()
    .expect("independent thread must not panic");
}

#[test]
fn panicked_holder_does_not_poison() {
    // The core regression the coordinator migration depends on: a thread
    // that panics while holding the lock must not wedge later users.
    let m = Arc::new(DiagMutex::new(41u32));
    let m2 = Arc::clone(&m);
    let joined = std::thread::spawn(move || {
        let _g = m2.lock();
        panic!("holder dies");
    })
    .join();
    assert!(joined.is_err());
    *m.lock() += 1; // recovers instead of propagating poison
    assert_eq!(*m.lock(), 42);
}

#[test]
fn rwlock_panicked_writer_does_not_poison() {
    let l = Arc::new(DiagRwLock::new(10u32));
    let l2 = Arc::clone(&l);
    let joined = std::thread::spawn(move || {
        let _g = l2.write();
        panic!("writer dies");
    })
    .join();
    assert!(joined.is_err());
    assert_eq!(*l.read(), 10);
    *l.write() += 1;
    assert_eq!(*l.read(), 11);
}

#[cfg(debug_assertions)]
#[test]
fn watchdog_counts_long_holds() {
    typhoon_diag::set_hold_threshold(Duration::from_millis(1));
    let m = DiagMutex::with_rank(LockRank(990), "test.watchdog", ());
    {
        let _g = m.lock();
        std::thread::sleep(Duration::from_millis(5)); // LINT: allow-sleep(test exercises the hold watchdog)
    }
    let snap = typhoon_diag::registry().snapshot();
    assert!(snap.counter("diag.lock.held_too_long") >= 1);
    assert!(snap.counter("diag.lock.held_too_long.test.watchdog") >= 1);
    // Restore the default so other tests in this binary are unaffected.
    typhoon_diag::set_hold_threshold(Duration::from_millis(100));
}

#[test]
fn try_lock_contended_returns_none() {
    let m = DiagMutex::new(5u32);
    let g = m.lock();
    assert!(m.try_lock().is_none());
    drop(g);
    assert_eq!(*m.try_lock().expect("uncontended"), 5);
}

#[test]
fn guards_release_their_stack_entry() {
    // Sequential (non-nested) acquisitions in "wrong" rank order are legal:
    // the first guard is dropped before the second acquisition.
    let low = DiagMutex::with_rank(rank::CLUSTER, "test.seq.low", ());
    let high = DiagMutex::with_rank(rank::DATAPATH, "test.seq.high", ());
    {
        let _h = high.lock();
    }
    let _l = low.lock(); // fine: nothing held any more
}
