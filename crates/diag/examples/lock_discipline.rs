//! Demonstrates the debug-build lock discipline checks.
//!
//! ```sh
//! cargo run -p typhoon-diag --example lock_discipline            # checks live
//! cargo run -p typhoon-diag --example lock_discipline --release  # compiled out
//! ```

use std::panic;
use std::time::Duration;
use typhoon_diag::{rank, set_hold_threshold, DiagMutex};

fn main() {
    let cluster = DiagMutex::with_rank(rank::CLUSTER, "demo.cluster", ());
    let datapath = DiagMutex::with_rank(rank::DATAPATH, "demo.datapath", ());

    // Legal order: outer layer (low rank) before inner layer (high rank).
    {
        let _c = cluster.lock();
        let _d = datapath.lock();
        println!("cluster -> datapath: ok (ranks ascend)");
    }

    // Inversion: taking the cluster lock while holding the datapath.
    let inverted = panic::catch_unwind(panic::AssertUnwindSafe(|| {
        let _d = datapath.lock();
        let _c = cluster.lock();
    }));
    match inverted {
        Err(e) => {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "<non-string panic>".into());
            println!("datapath -> cluster: caught inversion panic:\n  {msg}");
        }
        Ok(()) => println!("datapath -> cluster: no panic (release build, checks compiled out)"),
    }

    // Watchdog: holding a lock past the threshold reports on stderr and
    // bumps the diag.lock.held_too_long counters (debug builds only).
    set_hold_threshold(Duration::from_millis(10));
    {
        let _c = cluster.lock();
        std::thread::sleep(Duration::from_millis(30));
    }
    println!("held demo.cluster 30ms against a 10ms threshold (watchdog reports above)");
}
