//! Property tests on the metrics substrate: histogram quantiles are
//! order-consistent and bounded by recorded extremes for arbitrary sample
//! sets; rate meters bucket arbitrary mark patterns without losing events.

use proptest::prelude::*;
use std::time::{Duration, Instant};
use typhoon_metrics::{Histogram, RateMeter};

proptest! {
    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        samples in proptest::collection::vec(1u64..1_000_000_000, 1..200)
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mut prev = 0u64;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).expect("non-empty");
            prop_assert!(v >= prev, "quantiles must not decrease");
            prop_assert!(v >= min && v <= max, "q{q}: {v} outside [{min},{max}]");
            prev = v;
        }
        // The mean is exact (not bucketed).
        let want = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        prop_assert!((h.mean() - want).abs() < 1e-6 * want.max(1.0));
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    #[test]
    fn histogram_cdf_covers_every_sample(
        samples in proptest::collection::vec(1u64..1_000_000, 1..100)
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let cdf = h.cdf();
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        let mut prev_frac = 0.0;
        for &(v, frac) in &cdf {
            prop_assert!(frac > prev_frac, "strictly increasing fractions");
            prop_assert!(v > 0);
            prev_frac = frac;
        }
        // Bucket upper bounds keep ≤6.25% relative error: every sample is
        // ≤ its bucket's representative value.
        for &s in &samples {
            let covering = cdf.iter().find(|&&(v, _)| v as f64 >= s as f64 * 0.93);
            prop_assert!(covering.is_some(), "sample {s} not covered");
        }
    }

    #[test]
    fn rate_meter_conserves_events(
        marks in proptest::collection::vec((0u64..5_000, 1u64..100), 0..100)
    ) {
        let m = RateMeter::with_window(Duration::from_millis(100));
        let t0 = Instant::now();
        let mut total = 0u64;
        for &(offset_ms, n) in &marks {
            m.mark_at(t0 + Duration::from_millis(offset_ms), n);
            total += n;
        }
        prop_assert_eq!(m.total(), total);
        let series_sum: u64 = m.series().iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(series_sum, total, "bucketing loses nothing");
        // Windows are contiguous from zero.
        for (i, &(offset, _)) in m.series().iter().enumerate() {
            prop_assert_eq!(offset, Duration::from_millis(100) * i as u32);
        }
    }
}
