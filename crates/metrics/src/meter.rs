//! Per-second throughput timelines.
//!
//! Experiment binaries mark events on a [`RateMeter`]; the meter buckets them
//! into fixed windows relative to its creation instant, producing the same
//! "tuples/sec over time" series the paper's Figures 10–12 and 14 plot.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    start: Instant,
    window: Duration,
    buckets: Vec<u64>,
}

/// Records events into fixed-size time buckets.
///
/// Clones share the same underlying series, so a worker thread can mark
/// events while the experiment harness reads the timeline.
#[derive(Debug, Clone)]
pub struct RateMeter {
    inner: Arc<Mutex<Inner>>,
}

impl RateMeter {
    /// A meter with one-second windows (the paper's plotting granularity).
    pub fn per_second() -> Self {
        Self::with_window(Duration::from_secs(1))
    }

    /// A meter with a custom window (experiments compress timelines).
    pub fn with_window(window: Duration) -> Self {
        assert!(!window.is_zero(), "meter window must be non-zero");
        RateMeter {
            inner: Arc::new(Mutex::new(Inner {
                start: Instant::now(),
                window,
                buckets: Vec::new(),
            })),
        }
    }

    fn bucket_index(inner: &Inner, at: Instant) -> usize {
        let elapsed = at.saturating_duration_since(inner.start);
        (elapsed.as_nanos() / inner.window.as_nanos()) as usize
    }

    /// Marks `n` events at the current time.
    pub fn mark(&self, n: u64) {
        self.mark_at(Instant::now(), n);
    }

    /// Marks `n` events at an explicit instant (deterministic tests).
    pub fn mark_at(&self, at: Instant, n: u64) {
        let mut inner = self.inner.lock();
        let idx = Self::bucket_index(&inner, at);
        if inner.buckets.len() <= idx {
            inner.buckets.resize(idx + 1, 0);
        }
        inner.buckets[idx] += n;
    }

    /// The recorded series as (window start offset, events in window) pairs.
    /// Trailing never-written windows are absent; interior gaps are zeros.
    pub fn series(&self) -> Vec<(Duration, u64)> {
        let inner = self.inner.lock();
        inner
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| (inner.window * i as u32, n))
            .collect()
    }

    /// Events per second in each window (normalizing by window length).
    pub fn rates_per_sec(&self) -> Vec<f64> {
        let inner = self.inner.lock();
        let secs = inner.window.as_secs_f64();
        inner.buckets.iter().map(|&n| n as f64 / secs).collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.inner.lock().buckets.iter().sum()
    }

    /// Mean events/sec over windows `[from, to)` of the recorded series,
    /// or 0.0 when the range is empty. Used to compute steady-state
    /// throughput excluding warm-up.
    pub fn mean_rate(&self, from: usize, to: usize) -> f64 {
        let rates = self.rates_per_sec();
        let slice: Vec<f64> = rates
            .into_iter()
            .skip(from)
            .take(to.saturating_sub(from))
            .collect();
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().sum::<f64>() / slice.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_bucket_by_window() {
        let m = RateMeter::with_window(Duration::from_millis(10));
        let start = m.inner.lock().start;
        m.mark_at(start, 2);
        m.mark_at(start + Duration::from_millis(5), 1);
        m.mark_at(start + Duration::from_millis(25), 4);
        let series = m.series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].1, 3);
        assert_eq!(series[1].1, 0); // interior gap is an explicit zero
        assert_eq!(series[2].1, 4);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn rates_normalize_by_window() {
        let m = RateMeter::with_window(Duration::from_millis(500));
        let start = m.inner.lock().start;
        m.mark_at(start, 100);
        assert_eq!(m.rates_per_sec()[0], 200.0);
    }

    #[test]
    fn mean_rate_excludes_warmup() {
        let m = RateMeter::with_window(Duration::from_secs(1));
        let start = m.inner.lock().start;
        m.mark_at(start, 1); // warm-up window
        m.mark_at(start + Duration::from_secs(1), 10);
        m.mark_at(start + Duration::from_secs(2), 20);
        assert_eq!(m.mean_rate(1, 3), 15.0);
        assert_eq!(m.mean_rate(5, 9), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let _ = RateMeter::with_window(Duration::ZERO);
    }

    #[test]
    fn clones_share_series() {
        let m = RateMeter::per_second();
        let n = m.clone();
        n.mark(3);
        assert_eq!(m.total(), 3);
    }
}
