//! Per-second throughput timelines.
//!
//! Experiment binaries mark events on a [`RateMeter`]; the meter buckets them
//! into fixed windows relative to its creation instant, producing the same
//! "tuples/sec over time" series the paper's Figures 10–12 and 14 plot.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    start: Instant,
    window: Duration,
    buckets: Vec<u64>,
}

/// Records events into fixed-size time buckets.
///
/// Clones share the same underlying series, so a worker thread can mark
/// events while the experiment harness reads the timeline.
#[derive(Debug, Clone)]
pub struct RateMeter {
    inner: Arc<Mutex<Inner>>,
}

impl RateMeter {
    /// A meter with one-second windows (the paper's plotting granularity).
    pub fn per_second() -> Self {
        Self::with_window(Duration::from_secs(1))
    }

    /// A meter with a custom window (experiments compress timelines).
    pub fn with_window(window: Duration) -> Self {
        assert!(!window.is_zero(), "meter window must be non-zero");
        RateMeter {
            inner: Arc::new(Mutex::new(Inner {
                start: Instant::now(),
                window,
                buckets: Vec::new(),
            })),
        }
    }

    fn bucket_index(inner: &Inner, at: Instant) -> usize {
        let elapsed = at.saturating_duration_since(inner.start);
        (elapsed.as_nanos() / inner.window.as_nanos()) as usize
    }

    /// Marks `n` events at the current time.
    pub fn mark(&self, n: u64) {
        self.mark_at(Instant::now(), n);
    }

    /// Marks `n` events at an explicit instant (deterministic tests).
    pub fn mark_at(&self, at: Instant, n: u64) {
        let mut inner = self.inner.lock();
        let idx = Self::bucket_index(&inner, at);
        if inner.buckets.len() <= idx {
            inner.buckets.resize(idx + 1, 0);
        }
        inner.buckets[idx] += n;
    }

    /// The recorded series as (window start offset, events in window) pairs.
    /// Trailing never-written windows are absent; interior gaps are zeros.
    pub fn series(&self) -> Vec<(Duration, u64)> {
        let inner = self.inner.lock();
        inner
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| (inner.window * i as u32, n))
            .collect()
    }

    /// Smallest fraction of a window the in-progress bucket is normalized
    /// by: a read 1 ms into a 1 s window would otherwise inflate a handful
    /// of events into an absurd rate, so anything earlier than 1 % of the
    /// window is treated as 1 % elapsed.
    const MIN_PARTIAL_FRACTION: f64 = 0.01;

    /// Events per second in each window, normalized by window length.
    ///
    /// The final bucket is special-cased: if it is still in progress at the
    /// time of the read, it is normalized by the *elapsed* portion of the
    /// window rather than the full window length. Normalizing a partial
    /// window by its full length understates the most recent timeline point
    /// (a read 100 ms into a 1 s window would report ~10× low) and drags
    /// steady-state [`RateMeter::mean_rate`] down with it.
    pub fn rates_per_sec(&self) -> Vec<f64> {
        self.rates_per_sec_at(Instant::now())
    }

    /// [`RateMeter::rates_per_sec`] with an explicit read instant
    /// (deterministic tests).
    pub fn rates_per_sec_at(&self, now: Instant) -> Vec<f64> {
        let inner = self.inner.lock();
        let secs = inner.window.as_secs_f64();
        let last = inner.buckets.len().wrapping_sub(1);
        let current = Self::bucket_index(&inner, now);
        inner
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let denom = if i == last && i == current {
                    // In-progress final window: elapsed-normalize.
                    let into =
                        now.saturating_duration_since(inner.start).as_secs_f64() - i as f64 * secs;
                    into.max(secs * Self::MIN_PARTIAL_FRACTION)
                } else {
                    secs
                };
                n as f64 / denom
            })
            .collect()
    }

    /// Total events recorded.
    pub fn total(&self) -> u64 {
        self.inner.lock().buckets.iter().sum()
    }

    /// Mean events/sec over windows `[from, to)` of the recorded series,
    /// or 0.0 when the range is empty. Used to compute steady-state
    /// throughput excluding warm-up.
    pub fn mean_rate(&self, from: usize, to: usize) -> f64 {
        self.mean_rate_at(from, to, Instant::now())
    }

    /// [`RateMeter::mean_rate`] with an explicit read instant
    /// (deterministic tests).
    pub fn mean_rate_at(&self, from: usize, to: usize, now: Instant) -> f64 {
        let rates = self.rates_per_sec_at(now);
        let slice: Vec<f64> = rates
            .into_iter()
            .skip(from)
            .take(to.saturating_sub(from))
            .collect();
        if slice.is_empty() {
            0.0
        } else {
            slice.iter().sum::<f64>() / slice.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_bucket_by_window() {
        let m = RateMeter::with_window(Duration::from_millis(10));
        let start = m.inner.lock().start;
        m.mark_at(start, 2);
        m.mark_at(start + Duration::from_millis(5), 1);
        m.mark_at(start + Duration::from_millis(25), 4);
        let series = m.series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0].1, 3);
        assert_eq!(series[1].1, 0); // interior gap is an explicit zero
        assert_eq!(series[2].1, 4);
        assert_eq!(m.total(), 7);
    }

    #[test]
    fn rates_normalize_by_window() {
        let m = RateMeter::with_window(Duration::from_millis(500));
        let start = m.inner.lock().start;
        m.mark_at(start, 100);
        // Read once the window has completed: full-length normalization.
        let done = start + Duration::from_millis(500);
        assert_eq!(m.rates_per_sec_at(done)[0], 200.0);
    }

    #[test]
    fn partial_final_window_is_elapsed_normalized() {
        // 100 events in the first 100 ms of a 1 s window: the in-progress
        // read must report the actual rate (~1000/s), not the full-window
        // normalization (100/s) that understated the final point ~10×.
        let m = RateMeter::with_window(Duration::from_secs(1));
        let start = m.inner.lock().start;
        m.mark_at(start, 100);
        let read = start + Duration::from_millis(100);
        let rates = m.rates_per_sec_at(read);
        assert_eq!(rates.len(), 1);
        assert!(
            (rates[0] - 1000.0).abs() < 1e-6,
            "elapsed-normalized rate, got {}",
            rates[0]
        );
        // Once the window completes, the same bucket reads full-window.
        let done = start + Duration::from_secs(1);
        assert_eq!(m.rates_per_sec_at(done)[0], 100.0);
    }

    #[test]
    fn partial_window_near_zero_elapsed_is_clamped() {
        // Reading immediately after the window opens must not divide by ~0;
        // the denominator clamps at MIN_PARTIAL_FRACTION of the window.
        let m = RateMeter::with_window(Duration::from_secs(1));
        let start = m.inner.lock().start;
        m.mark_at(start, 5);
        let rates = m.rates_per_sec_at(start);
        assert!(rates[0].is_finite());
        assert!(
            (rates[0] - 5.0 / RateMeter::MIN_PARTIAL_FRACTION).abs() < 1e-6,
            "clamped rate, got {}",
            rates[0]
        );
    }

    #[test]
    fn only_the_current_final_window_is_partial() {
        // An interior bucket is never elapsed-normalized, and neither is a
        // final bucket whose window has already passed.
        let m = RateMeter::with_window(Duration::from_secs(1));
        let start = m.inner.lock().start;
        m.mark_at(start, 10);
        m.mark_at(start + Duration::from_secs(1), 20);
        let late = start + Duration::from_secs(5);
        assert_eq!(m.rates_per_sec_at(late), vec![10.0, 20.0]);
    }

    #[test]
    fn mean_rate_includes_corrected_partial_window() {
        // Steady 100/s stream read 100 ms into the third window: the
        // partial final point contributes ~100/s, keeping the steady-state
        // mean at ~100/s instead of dragging it toward 70/s.
        let m = RateMeter::with_window(Duration::from_secs(1));
        let start = m.inner.lock().start;
        m.mark_at(start, 100);
        m.mark_at(start + Duration::from_secs(1), 100);
        m.mark_at(start + Duration::from_secs(2), 10); // first 100 ms worth
        let read = start + Duration::from_millis(2100);
        let mean = m.mean_rate_at(0, 3, read);
        assert!((mean - 100.0).abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn mean_rate_excludes_warmup() {
        let m = RateMeter::with_window(Duration::from_secs(1));
        let start = m.inner.lock().start;
        m.mark_at(start, 1); // warm-up window
        m.mark_at(start + Duration::from_secs(1), 10);
        m.mark_at(start + Duration::from_secs(2), 20);
        assert_eq!(m.mean_rate(1, 3), 15.0);
        assert_eq!(m.mean_rate(5, 9), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_rejected() {
        let _ = RateMeter::with_window(Duration::ZERO);
    }

    #[test]
    fn clones_share_series() {
        let m = RateMeter::per_second();
        let n = m.clone();
        n.mark(3);
        assert_eq!(m.total(), 3);
    }
}
