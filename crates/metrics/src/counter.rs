//! Lock-free scalar metrics.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter (tuples emitted, packets forwarded,
/// flow-rule hits, …). Cheap to clone: clones share the same cell.
#[derive(Debug, Default, Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A new counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&self) -> u64 {
        self.cell.swap(0, Ordering::Relaxed)
    }
}

/// A settable signed gauge (queue depth, configured batch size, weights).
#[derive(Debug, Default, Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// A new gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.cell.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_clones_share_state() {
        let c = Counter::new();
        let d = c.clone();
        d.add(3);
        assert_eq!(c.get(), 3);
    }

    #[test]
    fn gauge_set_and_delta() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Counter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
