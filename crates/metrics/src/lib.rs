//! # typhoon-metrics — counters, rate timelines and latency histograms
//!
//! Instrumentation shared by every layer of the reproduction:
//!
//! * [`Counter`] / [`Gauge`] — lock-free scalar metrics (worker tuple counts,
//!   queue depths, switch port packet/byte counters).
//! * [`RateMeter`] — per-second throughput timelines. The evaluation figures
//!   of the paper (Figs. 10–12, 14) are *time series of tuples/sec*; a
//!   `RateMeter` records exactly that series so experiment binaries can print
//!   the same rows the paper plots.
//! * [`Histogram`] — log-bucketed latency histogram with quantiles and CDF
//!   export (Figs. 8(c) and 8(d) are latency CDFs).
//! * [`Registry`] — a named snapshotting registry; the SDN controller's
//!   metric collection (`METRIC_REQ`/`METRIC_RESP` control tuples, Table 2)
//!   serializes these snapshots.

#![warn(missing_docs)]

pub mod counter;
pub mod histogram;
pub mod meter;
pub mod registry;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSummary};
pub use meter::RateMeter;
pub use registry::{MetricSnapshot, Registry};
