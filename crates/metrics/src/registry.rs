//! Named metric registry and snapshots.
//!
//! Workers expose their internal statistics (queue depth, emitted tuples,
//! processing latency) through a [`Registry`]. The Typhoon SDN controller
//! pulls a [`MetricSnapshot`] via `METRIC_REQ`/`METRIC_RESP` control tuples
//! and feeds it to control-plane applications (auto-scaler, load balancer).

use crate::{Counter, Gauge, Histogram};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A point-in-time view of one registry, ready to serialize into a
/// `METRIC_RESP` control tuple payload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name: (count, mean, p50, p99), nanoseconds.
    pub histograms: BTreeMap<String, (u64, f64, u64, u64)>,
}

impl MetricSnapshot {
    /// Fetches a counter value, defaulting to zero.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Fetches a gauge value, defaulting to zero.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics. Clones share the same underlying maps.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    inner: Arc<RwLock<Inner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().counters.get(name) {
            return c.clone();
        }
        self.inner
            .write()
            .counters
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().gauges.get(name) {
            return g.clone();
        }
        self.inner
            .write()
            .gauges
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self.inner.read().histograms.get(name) {
            return h.clone();
        }
        self.inner
            .write()
            .histograms
            .entry(name.to_owned())
            .or_default()
            .clone()
    }

    /// Captures a consistent-enough snapshot of every metric.
    pub fn snapshot(&self) -> MetricSnapshot {
        let inner = self.inner.read();
        MetricSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        (
                            h.count(),
                            h.mean(),
                            h.quantile(0.5).unwrap_or(0),
                            h.quantile(0.99).unwrap_or(0),
                        ),
                    )
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_counter() {
        let r = Registry::new();
        r.counter("tuples.emitted").add(5);
        r.counter("tuples.emitted").add(2);
        assert_eq!(r.snapshot().counter("tuples.emitted"), 7);
    }

    #[test]
    fn snapshot_contains_all_kinds() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(-4);
        r.histogram("h").record(1000);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 1);
        assert_eq!(snap.gauge("g"), -4);
        let (count, mean, _, _) = snap.histograms["h"];
        assert_eq!(count, 1);
        assert!(mean > 0.0);
    }

    #[test]
    fn missing_metrics_default_to_zero_in_snapshot() {
        let snap = Registry::new().snapshot();
        assert_eq!(snap.counter("nope"), 0);
        assert_eq!(snap.gauge("nope"), 0);
    }

    #[test]
    fn registry_clones_share_metrics() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.counter("x").inc();
        assert_eq!(r.snapshot().counter("x"), 1);
    }
}
