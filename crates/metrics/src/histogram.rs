//! Log-bucketed latency histogram with quantile and CDF export.
//!
//! Latency samples span microseconds to seconds, so buckets grow
//! geometrically: each power of two is split into `SUB_BUCKETS` (16) linear
//! sub-buckets, giving a bounded relative error (< 1/SUB_BUCKETS) with a
//! small fixed footprint — the same idea as HDR histograms, reimplemented
//! because no histogram crate is in the sanctioned offline set.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Sub-buckets per power-of-two range; 16 gives ≤ 6.25 % relative error.
const SUB_BUCKETS: usize = 16;
/// Number of power-of-two ranges; covers values up to 2^40 ns ≈ 18 minutes.
const RANGES: usize = 40;

#[derive(Debug)]
struct Inner {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// A concurrent latency histogram recording `u64` nanosecond samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<Mutex<Inner>>,
}

/// Machine-readable snapshot of a [`Histogram`]: the quantile ladder the
/// experiment reports serialize (values in nanoseconds, bucket-approximate
/// except the exact min/max extremes).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Arithmetic mean in nanoseconds.
    pub mean_ns: f64,
    /// Exact smallest sample.
    pub min_ns: u64,
    /// Median (p50).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Exact largest sample.
    pub max_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(Mutex::new(Inner {
                buckets: vec![0; RANGES * SUB_BUCKETS],
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
            })),
        }
    }

    fn index_for(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let range = 63 - value.leading_zeros() as usize; // floor(log2(value))
        let shift = range.saturating_sub(SUB_BUCKETS.trailing_zeros() as usize);
        let sub = ((value >> shift) as usize) - SUB_BUCKETS;
        let idx = range.saturating_sub(3) * SUB_BUCKETS + sub;
        idx.min(RANGES * SUB_BUCKETS - 1)
    }

    /// Representative (upper-bound) value for a bucket index.
    fn value_for(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64 + 1;
        }
        let range = index / SUB_BUCKETS + 3;
        let sub = index % SUB_BUCKETS;
        let shift = range - SUB_BUCKETS.trailing_zeros() as usize;
        (((SUB_BUCKETS + sub) as u64) + 1) << shift
    }

    /// Records one raw sample (nanoseconds by convention).
    pub fn record(&self, value: u64) {
        let mut inner = self.inner.lock();
        let idx = Self::index_for(value);
        inner.buckets[idx] += 1;
        inner.count += 1;
        inner.sum += value as u128;
        inner.min = inner.min.min(value);
        inner.max = inner.max.max(value);
    }

    /// Records a [`Duration`] sample.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Arithmetic mean of samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let inner = self.inner.lock();
        if inner.count == 0 {
            0.0
        } else {
            inner.sum as f64 / inner.count as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        let inner = self.inner.lock();
        (inner.count > 0).then_some(inner.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        let inner = self.inner.lock();
        (inner.count > 0).then_some(inner.max)
    }

    /// Approximate quantile `q ∈ [0,1]` (`None` when empty).
    ///
    /// The extremes are exact, not bucket-approximated: `q <= 0.0` returns
    /// the smallest recorded sample and `q >= 1.0` the largest, matching
    /// [`Histogram::min`] / [`Histogram::max`].
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let inner = self.inner.lock();
        if inner.count == 0 {
            return None;
        }
        if q <= 0.0 {
            return Some(inner.min);
        }
        if q >= 1.0 {
            return Some(inner.max);
        }
        let target = ((inner.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in inner.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Some(Self::value_for(i).min(inner.max).max(inner.min));
            }
        }
        Some(inner.max)
    }

    /// CDF points as (value upper bound, cumulative fraction) pairs, one per
    /// non-empty bucket — the series plotted in Figs. 8(c)/(d).
    ///
    /// Values are clamped to the observed maximum so the final point is
    /// `(max, 1.0)` exactly rather than the last bucket's upper bound
    /// (which can overshoot the largest sample by a sub-bucket width).
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let inner = self.inner.lock();
        if inner.count == 0 {
            return Vec::new();
        }
        let mut out: Vec<(u64, f64)> = Vec::new();
        let mut seen = 0u64;
        for (i, &n) in inner.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            seen += n;
            let value = Self::value_for(i).min(inner.max);
            let frac = seen as f64 / inner.count as f64;
            match out.last_mut() {
                // Clamping can collapse the last two points onto the same
                // value; keep one point per value with the larger fraction.
                Some(last) if last.0 == value => last.1 = frac,
                _ => out.push((value, frac)),
            }
        }
        out
    }

    /// One-shot machine-readable summary — count, mean and the standard
    /// quantile ladder — for JSON export (`BENCH_*.json` latency metrics).
    /// `None` when no samples were recorded.
    pub fn summary(&self) -> Option<HistogramSummary> {
        if self.count() == 0 {
            return None;
        }
        // `quantile` is None only when empty, checked above; samples may
        // race in concurrently but can only add to the count.
        Some(HistogramSummary {
            count: self.count(),
            mean_ns: self.mean(),
            min_ns: self.quantile(0.0).unwrap_or(0),
            p50_ns: self.quantile(0.5).unwrap_or(0),
            p90_ns: self.quantile(0.9).unwrap_or(0),
            p99_ns: self.quantile(0.99).unwrap_or(0),
            p999_ns: self.quantile(0.999).unwrap_or(0),
            max_ns: self.quantile(1.0).unwrap_or(0),
        })
    }

    /// Clears all recorded samples.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        inner.buckets.iter_mut().for_each(|b| *b = 0);
        inner.count = 0;
        inner.sum = 0;
        inner.min = u64::MAX;
        inner.max = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.cdf().is_empty());
        assert_eq!(h.min(), None);
    }

    #[test]
    fn mean_min_max_exact() {
        let h = Histogram::new();
        for v in [10, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100ns .. 1ms
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        let p100 = h.quantile(1.0).unwrap();
        assert!(p50 <= p99 && p99 <= p100);
        assert!(p100 <= h.max().unwrap());
        // p50 within the histogram's relative error of the true median.
        let true_median = 500_000.0 * 100.0 / 100_000.0 * 1000.0; // 500_050*... keep simple:
        let _ = true_median;
        let err = (p50 as f64 - 500_000.0).abs() / 500_000.0;
        assert!(err < 0.10, "p50={p50} err={err}");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let h = Histogram::new();
        for v in [5u64, 5, 50, 500, 5_000, 50_000] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        for w in cdf.windows(2) {
            assert!(w[0].0 < w[1].0, "values ascend");
            assert!(w[0].1 <= w[1].1, "fractions ascend");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert!(h.cdf().is_empty());
    }

    #[test]
    fn huge_values_clamp_into_last_bucket() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn quantile_extremes_are_exact_min_and_max() {
        let h = Histogram::new();
        // 1000 and 1017 land in the same sub-bucket (bucket width at range
        // 2^9..2^10 is 64), so a bucket-approximated extreme would report
        // the shared upper bound for both; the exact path must not.
        for v in [1000u64, 1003, 1009, 1017] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1000), "q=0 is the exact min");
        assert_eq!(h.quantile(1.0), Some(1017), "q=1 is the exact max");
        // Out-of-range q clamps to the same exact extremes.
        assert_eq!(h.quantile(-0.5), Some(1000));
        assert_eq!(h.quantile(1.5), Some(1017));
        // Interior quantiles stay bucket-approximated but bounded.
        let p50 = h.quantile(0.5).unwrap();
        assert!((1000..=1017).contains(&p50));
    }

    #[test]
    fn cdf_pins_exact_bucket_boundaries() {
        let h = Histogram::new();
        // Below SUB_BUCKETS (16) every value gets its own unit bucket with
        // upper bound value+1; the final point clamps to the observed max.
        for v in [3u64, 4, 5] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert_eq!(
            cdf,
            vec![(4, 1.0 / 3.0), (5, 1.0)],
            "bucket bounds 4 and 6 expected; 6 clamps to max=5 and merges \
             with the bound-5 point"
        );
        // First power-of-two range boundary: 15 sits in the last identity
        // bucket (upper bound 16) and 16 in the first range-indexed bucket
        // (upper bound 17, clamped to max=16) — both points collapse onto
        // value 16 and merge into a single exact (max, 1.0) point.
        let h2 = Histogram::new();
        h2.record(15);
        h2.record(16);
        assert_eq!(h2.cdf(), vec![(16, 1.0)]);
    }

    #[test]
    fn summary_matches_quantile_ladder() {
        let h = Histogram::new();
        assert_eq!(h.summary(), None, "empty histogram has no summary");
        for v in 1..=1000u64 {
            h.record(v * 1000);
        }
        let s = h.summary().expect("non-empty");
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_ns, 1000);
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.p50_ns <= s.p90_ns && s.p90_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns && s.p999_ns <= s.max_ns);
        assert!((s.mean_ns - 500_500.0).abs() < 1.0);
    }

    #[test]
    fn record_duration_converts_to_nanos() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        let v = h.quantile(1.0).unwrap();
        assert!((2_800..=3_300).contains(&v), "got {v}");
    }
}
