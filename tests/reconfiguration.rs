//! Stable-update integration: the §3.5 guarantees under live traffic.
//!
//! The paper's central flexibility claims: scale up/down, routing-policy
//! changes and logic swaps must not lose tuples (stateless path) nor break
//! key affinity (stateful path with SIGNAL flushes).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon::prelude::*;

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

/// A finite spout emitting `limit` sequence numbers, pausable between
/// batches so the test can overlap emission with reconfiguration.
struct Seq {
    next: i64,
    limit: i64,
}

impl Spout for Seq {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for _ in 0..4 {
            if self.next >= self.limit {
                return false;
            }
            out.emit(vec![Value::Int(self.next)]);
            self.next += 1;
        }
        true
    }
}

struct Relay;

impl Bolt for Relay {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        out.emit(input.values);
    }
}

#[derive(Clone, Default)]
struct SeqSet {
    seen: Arc<Mutex<Vec<i64>>>,
}

struct Collect {
    set: SeqSet,
}

impl Bolt for Collect {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let Some(n) = input.get(0).and_then(Value::as_int) {
            self.set.seen.lock().push(n);
        }
    }
}

const LIMIT: i64 = 200_000;

fn setup(mid: usize) -> (TyphoonCluster, TyphoonTopologyHandle, SeqSet) {
    let set = SeqSet::default();
    let mut reg = ComponentRegistry::new();
    reg.register_spout("seq", || Seq {
        next: 0,
        limit: LIMIT,
    });
    reg.register_bolt("relay", || Relay);
    let s = set.clone();
    reg.register_bolt("collect", move || Collect { set: s.clone() });
    let topo = LogicalTopology::builder("stable")
        .spout("src", "seq", 1, Fields::new(["n"]))
        .bolt("mid", "relay", mid, Fields::new(["n"]))
        .bolt("out", "collect", 1, Fields::new(["n"]))
        .edge("src", "mid", Grouping::Shuffle)
        .edge("mid", "out", Grouping::Global)
        .build()
        .unwrap();
    let cluster = TyphoonCluster::new(TyphoonConfig::new(2).with_batch_size(10), reg).unwrap();
    let handle = cluster.submit(topo).unwrap();
    (cluster, handle, set)
}

fn assert_complete(set: &SeqSet) {
    let mut seen = set.seen.lock().clone();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(
        seen.len(),
        LIMIT as usize,
        "tuples lost: {} of {LIMIT} distinct",
        seen.len()
    );
    assert_eq!(seen[0], 0);
    assert_eq!(*seen.last().unwrap(), LIMIT - 1);
}

#[test]
fn scale_up_mid_stream_loses_nothing() {
    let (cluster, handle, set) = setup(2);
    // Reconfigure while the stream is in flight (Fig. 6(a)).
    assert!(wait_until(Duration::from_secs(5), || !set
        .seen
        .lock()
        .is_empty()));
    handle
        .reconfigure(ReconfigRequest::single(
            "stable",
            ReconfigOp::SetParallelism {
                node: "mid".into(),
                parallelism: 4,
            },
        ))
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || set.seen.lock().len()
            >= LIMIT as usize),
        "only {} arrived",
        set.seen.lock().len()
    );
    assert_complete(&set);
    cluster.shutdown();
}

#[test]
fn scale_down_mid_stream_loses_nothing() {
    let (cluster, handle, set) = setup(3);
    assert!(wait_until(Duration::from_secs(5), || !set
        .seen
        .lock()
        .is_empty()));
    // Fig. 6(a) removal ordering: predecessors rerouted first, victims
    // drained, then killed — no tuple may vanish.
    handle
        .reconfigure(ReconfigRequest::single(
            "stable",
            ReconfigOp::SetParallelism {
                node: "mid".into(),
                parallelism: 1,
            },
        ))
        .unwrap();
    assert_eq!(handle.tasks_of("mid").len(), 1);
    assert!(
        wait_until(Duration::from_secs(30), || set.seen.lock().len()
            >= LIMIT as usize),
        "only {} arrived",
        set.seen.lock().len()
    );
    assert_complete(&set);
    cluster.shutdown();
}

#[test]
fn routing_policy_change_mid_stream_loses_nothing() {
    let (cluster, handle, set) = setup(3);
    assert!(wait_until(Duration::from_secs(5), || !set
        .seen
        .lock()
        .is_empty()));
    handle
        .reconfigure(ReconfigRequest::single(
            "stable",
            ReconfigOp::SetGrouping {
                from: "src".into(),
                to: "mid".into(),
                grouping: Grouping::Fields(vec!["n".into()]),
            },
        ))
        .unwrap();
    assert!(
        wait_until(Duration::from_secs(30), || set.seen.lock().len()
            >= LIMIT as usize),
        "only {} arrived",
        set.seen.lock().len()
    );
    assert_complete(&set);
    cluster.shutdown();
}

#[test]
fn stateful_update_flushes_cache_before_rerouting() {
    // A stateful counter keyed by word; scaling it up emits SIGNALs first
    // (Fig. 6(b)) so no cached counts are stranded in killed workers.
    #[derive(Clone, Default)]
    struct Flushed {
        events: Arc<Mutex<Vec<(String, i64)>>>,
    }
    struct KeyCount {
        counts: HashMap<String, i64>,
    }
    impl Bolt for KeyCount {
        fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
            if let Some(w) = input.get(0).and_then(Value::as_str) {
                *self.counts.entry(w.into()).or_insert(0) += 1;
            }
        }
        fn on_signal(&mut self, out: &mut dyn Emitter) {
            for (w, c) in self.counts.drain() {
                out.emit(vec![Value::Str(w), Value::Int(c)]);
            }
        }
        fn is_stateful(&self) -> bool {
            true
        }
    }
    struct FlushSink {
        flushed: Flushed,
    }
    impl Bolt for FlushSink {
        fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
            if let (Some(w), Some(c)) = (
                input.get(0).and_then(Value::as_str),
                input.get(1).and_then(Value::as_int),
            ) {
                self.flushed.events.lock().push((w.into(), c));
            }
        }
    }
    struct Words {
        i: usize,
    }
    impl Spout for Words {
        fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
            if self.i >= 3_000 {
                return false;
            }
            out.emit(vec![Value::Str(
                ["alpha", "beta", "gamma"][self.i % 3].into(),
            )]);
            self.i += 1;
            true
        }
    }

    let flushed = Flushed::default();
    let emitted = Arc::new(AtomicU64::new(0));
    let mut reg = ComponentRegistry::new();
    reg.register_spout("words", || Words { i: 0 });
    reg.register_bolt("kcount", || KeyCount {
        counts: HashMap::new(),
    });
    let f = flushed.clone();
    reg.register_bolt("fsink", move || FlushSink { flushed: f.clone() });
    let _ = emitted;

    let topo = LogicalTopology::builder("stateful")
        .spout("src", "words", 1, Fields::new(["word"]))
        .bolt_with_state("count", "kcount", 2, Fields::new(["word", "n"]), true)
        .bolt("out", "fsink", 1, Fields::new(["word", "n"]))
        .edge("src", "count", Grouping::Fields(vec!["word".into()]))
        .edge("count", "out", Grouping::Global)
        .build()
        .unwrap();
    let cluster = TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(5), reg).unwrap();
    let handle = cluster.submit(topo).unwrap();

    // Let the whole finite stream be absorbed into worker caches.
    std::thread::sleep(Duration::from_secs(3));
    assert!(flushed.events.lock().is_empty(), "no flush before update");
    handle
        .reconfigure(ReconfigRequest::single(
            "stateful",
            ReconfigOp::SetParallelism {
                node: "count".into(),
                parallelism: 3,
            },
        ))
        .unwrap();
    // The SIGNAL flush pushed every cached count downstream: the sums per
    // word must equal the full input (1000 each).
    assert!(
        wait_until(Duration::from_secs(10), || {
            let events = flushed.events.lock();
            let mut sums: HashMap<String, i64> = HashMap::new();
            for (w, c) in events.iter() {
                *sums.entry(w.clone()).or_insert(0) += c;
            }
            ["alpha", "beta", "gamma"]
                .iter()
                .all(|w| sums.get(*w).copied().unwrap_or(0) == 1_000)
        }),
        "flushed state incomplete: {:?}",
        flushed.events.lock()
    );
    cluster.shutdown();
}
