//! Cross-framework equivalence: the same application code must produce the
//! same results on the Storm baseline and on Typhoon — the property that
//! makes the paper's comparisons meaningful.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon::prelude::*;

/// Emits a fixed corpus of sentences once.
struct CorpusSpout {
    i: usize,
}

const CORPUS: &[&str] = &["a b c", "a b", "a c c", "d d d d", "b c d a", "a a a"];
const REPEATS: usize = 50;

impl Spout for CorpusSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        if self.i >= CORPUS.len() * REPEATS {
            return false;
        }
        out.emit(vec![Value::Str(CORPUS[self.i % CORPUS.len()].into())]);
        self.i += 1;
        true
    }
}

struct Split;

impl Bolt for Split {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if let Some(s) = input.get(0).and_then(Value::as_str) {
            for w in s.split_whitespace() {
                out.emit(vec![Value::Str(w.into())]);
            }
        }
    }
}

#[derive(Clone, Default)]
struct Counts {
    map: Arc<Mutex<HashMap<String, i64>>>,
}

struct CountSink {
    counts: Counts,
}

impl Bolt for CountSink {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let Some(w) = input.get(0).and_then(Value::as_str) {
            *self.counts.map.lock().entry(w.into()).or_insert(0) += 1;
        }
    }
}

fn registry() -> (ComponentRegistry, Counts) {
    let counts = Counts::default();
    let mut reg = ComponentRegistry::new();
    reg.register_spout("corpus", || CorpusSpout { i: 0 });
    reg.register_bolt("split", || Split);
    let c = counts.clone();
    reg.register_bolt("count", move || CountSink { counts: c.clone() });
    (reg, counts)
}

fn topology() -> LogicalTopology {
    LogicalTopology::builder("equiv")
        .spout("src", "corpus", 1, Fields::new(["sentence"]))
        .bolt("split", "split", 2, Fields::new(["word"]))
        .bolt("count", "count", 3, Fields::new(["word"]))
        .edge("src", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["word".into()]))
        .build()
        .unwrap()
}

fn expected() -> HashMap<String, i64> {
    let mut m = HashMap::new();
    for s in CORPUS {
        for w in s.split_whitespace() {
            *m.entry(w.to_owned()).or_insert(0) += REPEATS as i64;
        }
    }
    m
}

fn wait_for_total(counts: &Counts, total: i64, timeout: Duration) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if counts.map.lock().values().sum::<i64>() >= total {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn storm_word_count_matches_expected() {
    let (reg, counts) = registry();
    let cluster = StormCluster::new(StormConfig::local(2), reg);
    let _h = cluster.submit(topology()).unwrap();
    let total: i64 = expected().values().sum();
    assert!(
        wait_for_total(&counts, total, Duration::from_secs(20)),
        "storm got {:?}",
        counts.map.lock().values().sum::<i64>()
    );
    assert_eq!(*counts.map.lock(), expected());
    cluster.shutdown();
}

#[test]
fn typhoon_word_count_matches_expected() {
    let (reg, counts) = registry();
    let cluster = TyphoonCluster::new(TyphoonConfig::new(2).with_batch_size(10), reg).unwrap();
    let _h = cluster.submit(topology()).unwrap();
    let total: i64 = expected().values().sum();
    assert!(
        wait_for_total(&counts, total, Duration::from_secs(20)),
        "typhoon got {:?}",
        counts.map.lock().values().sum::<i64>()
    );
    assert_eq!(*counts.map.lock(), expected());
    cluster.shutdown();
}

#[test]
fn typhoon_tcp_tunnels_preserve_results_across_hosts() {
    let (reg, counts) = registry();
    // 1-slot hosts force every edge across a TCP tunnel.
    let mut config = TyphoonConfig::new(6).with_batch_size(10).with_tcp_tunnels();
    config.slots_per_host = 1;
    let cluster = TyphoonCluster::new(config, reg).unwrap();
    let _h = cluster.submit(topology()).unwrap();
    let total: i64 = expected().values().sum();
    assert!(
        wait_for_total(&counts, total, Duration::from_secs(30)),
        "typhoon/tcp got {:?}",
        counts.map.lock().values().sum::<i64>()
    );
    assert_eq!(*counts.map.lock(), expected());
    cluster.shutdown();
}
