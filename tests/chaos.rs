//! Chaos suite: the Fig. 2 word-count shape on 2 hosts, with every
//! inter-host tunnel wrapped in a seeded [`FaultInjector`], one fault
//! class per test: drop, delay, duplicate, corrupt-bytes, stall and
//! hard-partition.
//!
//! Contract under test (the Fig. 10 robustness claim, generalized): for
//! the recoverable classes the topology must *fully* recover — every
//! spout root acked complete, every sequence delivered at least once
//! (at-least-once semantics: replays may duplicate, never lose) — and for
//! a hard partition the failure must surface as a *typed* signal (tunnel
//! teardown + `PortStatus` delete + a coordinator fault record) within
//! the heartbeat timeout. Nothing may hang: every wait is
//! deadline-bounded.
//!
//! All randomness derives from one seed so a failing run replays exactly:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test --test chaos
//! ```

use std::time::{Duration, Instant};
use typhoon::controller::apps::{FaultDetector, TUNNEL_FAULTS};
use typhoon::net::{FaultPlan, FaultSpec};
use typhoon::prelude::*;
use typhoon_bench::workloads::{register_standard, SinkCounter};
use typhoon_model::{ComponentRegistry, Fields, HostId};

/// Heartbeat timeout bound (matches `exp_fig10`): a fault must surface as
/// a typed signal well within this.
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(5);

/// Spout roots per run. Small enough to keep the suite quick, large
/// enough that per-frame fault probabilities bite hundreds of times.
const ROOTS: i64 = 120;

fn chaos_seed() -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xc4a0_5eed);
    // Captured output is shown on failure: this is the replay handle.
    println!("CHAOS_SEED={seed}");
    seed
}

/// The Fig. 2 word-count shape — 1 source, 2 shuffle-grouped middle
/// workers, field-grouped sinks — built from components whose delivery is
/// exactly checkable: the source is the replaying `SeqSpout` (fails →
/// replays, the at-least-once contract), the sinks count every sequence.
fn word_count_shape() -> LogicalTopology {
    LogicalTopology::builder("chaos-word-count")
        .spout("input", "seq-spout", 1, Fields::new(["seq", "payload"]))
        .bolt("split", "relay", 2, Fields::new(["seq", "payload"]))
        .bolt("count", "seq-sink", 2, Fields::new(["seq"]))
        .edge("input", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["seq".into()]))
        .build()
        .expect("valid topology")
}

struct ChaosRun {
    cluster: TyphoonCluster,
    handle: TyphoonTopologyHandle,
    sink: SinkCounter,
}

/// Boots a 2-host acking cluster with `plan` on every tunnel edge and
/// submits the word-count shape. Few slots per host force cross-host
/// edges, so tuples and acks genuinely cross the faulty tunnels.
fn launch(plan: FaultPlan) -> ChaosRun {
    let mut reg = ComponentRegistry::new();
    let (sink, _agg) = register_standard(&mut reg, 16, 4);
    let mut config = TyphoonConfig::new(2)
        .with_batch_size(4)
        .with_acking(Duration::from_secs(2), 64)
        .with_chaos(plan);
    config.slots_per_host = 3;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    cluster.controller().add_app(Box::new(FaultDetector::new()));
    // Cap the sequence: the run is done when every root completes.
    cluster.register_spout("seq-spout", || {
        typhoon_bench::workloads::SeqSpout::new(16, 4).with_limit(ROOTS)
    });
    let handle = cluster.submit(word_count_shape()).expect("submit");
    ChaosRun {
        cluster,
        handle,
        sink,
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + timeout;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn completed_roots(run: &ChaosRun) -> u64 {
    run.handle
        .tasks_of("input")
        .first()
        .and_then(|&t| run.handle.worker(t))
        .map(|w| w.registry.snapshot().counter("acks.completed"))
        .unwrap_or(0)
}

/// Asserts full recovery: all roots complete, no sequence silently lost.
fn assert_recovers(run: &ChaosRun, what: &str) {
    assert!(
        wait_until(Duration::from_secs(90), || completed_roots(run)
            == ROOTS as u64),
        "[{what}] only {}/{ROOTS} roots completed",
        completed_roots(run)
    );
    // At-least-once: replays may duplicate, but every sequence arrived.
    assert!(
        run.sink.count() >= ROOTS as u64,
        "[{what}] sink saw {} < {ROOTS} — an acked tuple was lost",
        run.sink.count()
    );
    run.cluster.shutdown();
}

#[test]
fn clean_baseline_completes() {
    let run = launch(FaultPlan::clean(chaos_seed()));
    assert_recovers(&run, "baseline");
}

#[test]
fn recovers_from_frame_drops() {
    let run = launch(FaultPlan::symmetric(
        chaos_seed(),
        FaultSpec::CLEAN.dropping(0.05),
    ));
    assert_recovers(&run, "drop");
}

#[test]
fn recovers_from_added_delay() {
    let run = launch(FaultPlan::symmetric(
        chaos_seed(),
        FaultSpec::CLEAN.delaying(Duration::from_millis(25)),
    ));
    assert_recovers(&run, "delay");
}

#[test]
fn recovers_from_duplication() {
    let run = launch(FaultPlan::symmetric(
        chaos_seed(),
        FaultSpec::CLEAN.duplicating(0.10),
    ));
    assert_recovers(&run, "duplicate");
}

#[test]
fn recovers_from_corrupt_bytes() {
    let run = launch(FaultPlan::symmetric(
        chaos_seed(),
        FaultSpec::CLEAN.corrupting(0.05),
    ));
    assert_recovers(&run, "corrupt");
}

#[test]
fn recovers_after_a_stall_heals() {
    // Start stalled in both directions: cross-host traffic is withheld
    // (not dropped, not failed — the nastiest case for liveness).
    let seed = chaos_seed();
    let run = launch(FaultPlan::symmetric(seed, FaultSpec::CLEAN.stalled()));
    // Let the system run into the stall, then heal every edge at runtime.
    std::thread::sleep(Duration::from_secs(2));
    assert!(
        completed_roots(&run) < ROOTS as u64,
        "stall had no effect — the topology never crossed hosts"
    );
    for from in 0..2u32 {
        for to in 0..2u32 {
            if from != to {
                run.cluster
                    .chaos_handle(HostId(from), HostId(to))
                    .expect("chaos handle")
                    .heal();
            }
        }
    }
    assert_recovers(&run, "stall-heal");
}

#[test]
fn partition_surfaces_as_typed_fault_within_heartbeat_timeout() {
    // Healthy start, then a hard partition of the host link mid-run.
    let run = launch(FaultPlan::clean(chaos_seed()));
    assert!(
        wait_until(Duration::from_secs(30), || run.sink.count() > 0),
        "no traffic before the partition"
    );
    let partitioned = Instant::now();
    for from in 0..2u32 {
        for to in 0..2u32 {
            if from != to {
                run.cluster
                    .chaos_handle(HostId(from), HostId(to))
                    .expect("chaos handle")
                    .set_plan(FaultPlan::symmetric(1, FaultSpec::CLEAN.partitioned()));
            }
        }
    }
    // The typed failure path: each switch tears its tunnel down, reports a
    // tunnel-peer PortStatus delete, and the fault detector records the
    // link fault in the coordinator — all inside the heartbeat timeout.
    assert!(
        wait_until(HEARTBEAT_TIMEOUT, || {
            (0..2u32).all(|h| {
                run.cluster
                    .switch(HostId(h))
                    .map(|s| s.tunnel_down_count() >= 1)
                    .unwrap_or(false)
            })
        }),
        "switches never tore the partitioned tunnels down"
    );
    assert!(
        wait_until(HEARTBEAT_TIMEOUT, || {
            let coord = run.cluster.global().coordinator();
            coord.exists(&format!("{TUNNEL_FAULTS}/host-0-to-1"))
                || coord.exists(&format!("{TUNNEL_FAULTS}/host-1-to-0"))
        }),
        "fault detector never recorded the link fault"
    );
    assert!(
        partitioned.elapsed() < HEARTBEAT_TIMEOUT * 2,
        "typed failure took longer than the heartbeat budget"
    );
    // Shutdown must stay clean — no hang with the fabric partitioned.
    run.cluster.shutdown();
}
