//! Chaos suite: the Fig. 2 word-count shape on 2 hosts, with every
//! inter-host tunnel wrapped in a seeded [`FaultInjector`], one fault
//! class per test: drop, delay, duplicate, corrupt-bytes, stall and
//! hard-partition.
//!
//! Contract under test (the Fig. 10 robustness claim, generalized): for
//! the recoverable classes the topology must *fully* recover — every
//! spout root acked complete, every sequence delivered at least once
//! (at-least-once semantics: replays may duplicate, never lose) — and for
//! a hard partition the failure must surface as a *typed* signal (tunnel
//! teardown + `PortStatus` delete + a coordinator fault record) within
//! the heartbeat timeout. Nothing may hang: every wait is
//! deadline-bounded.
//!
//! All randomness derives from one seed so a failing run replays exactly:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test --test chaos
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};
use typhoon::controller::apps::{FaultDetector, TUNNEL_FAULTS};
use typhoon::core::SchedulerKind;
use typhoon::net::{FaultPlan, FaultSpec, KillSpec};
use typhoon::prelude::*;
use typhoon_bench::workloads::{
    expected_word_counts, recovery_word_count_topology, register_replay_spout, register_standard,
    SinkCounter,
};
use typhoon_model::{ComponentRegistry, Fields, HostId};

/// Heartbeat timeout bound (matches `exp_fig10`): a fault must surface as
/// a typed signal well within this.
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(5);

/// Spout roots per run. Small enough to keep the suite quick, large
/// enough that per-frame fault probabilities bite hundreds of times.
const ROOTS: i64 = 120;

fn chaos_seed() -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xc4a0_5eed);
    // Captured output is shown on failure: this is the replay handle.
    println!("CHAOS_SEED={seed}");
    seed
}

/// The Fig. 2 word-count shape — 1 source, 2 shuffle-grouped middle
/// workers, field-grouped sinks — built from components whose delivery is
/// exactly checkable: the source is the replaying `SeqSpout` (fails →
/// replays, the at-least-once contract), the sinks count every sequence.
fn word_count_shape() -> LogicalTopology {
    LogicalTopology::builder("chaos-word-count")
        .spout("input", "seq-spout", 1, Fields::new(["seq", "payload"]))
        .bolt("split", "relay", 2, Fields::new(["seq", "payload"]))
        .bolt("count", "seq-sink", 2, Fields::new(["seq"]))
        .edge("input", "split", Grouping::Shuffle)
        .edge("split", "count", Grouping::Fields(vec!["seq".into()]))
        .build()
        .expect("valid topology")
}

struct ChaosRun {
    cluster: TyphoonCluster,
    handle: TyphoonTopologyHandle,
    sink: SinkCounter,
}

/// Boots a 2-host acking cluster with `plan` on every tunnel edge and
/// submits the word-count shape. Few slots per host force cross-host
/// edges, so tuples and acks genuinely cross the faulty tunnels.
fn launch(plan: FaultPlan) -> ChaosRun {
    let mut reg = ComponentRegistry::new();
    let (sink, _agg) = register_standard(&mut reg, 16, 4);
    let mut config = TyphoonConfig::new(2)
        .with_batch_size(4)
        .with_acking(Duration::from_secs(2), 64)
        .with_chaos(plan);
    config.slots_per_host = 3;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    cluster.controller().add_app(Box::new(FaultDetector::new()));
    // Cap the sequence: the run is done when every root completes.
    cluster.register_spout("seq-spout", || {
        typhoon_bench::workloads::SeqSpout::new(16, 4).with_limit(ROOTS)
    });
    let handle = cluster.submit(word_count_shape()).expect("submit");
    ChaosRun {
        cluster,
        handle,
        sink,
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + timeout;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn completed_roots(run: &ChaosRun) -> u64 {
    run.handle
        .tasks_of("input")
        .first()
        .and_then(|&t| run.handle.worker(t))
        .map(|w| w.registry.snapshot().counter("acks.completed"))
        .unwrap_or(0)
}

/// Asserts full recovery: all roots complete, no sequence silently lost.
fn assert_recovers(run: &ChaosRun, what: &str) {
    assert!(
        wait_until(Duration::from_secs(90), || completed_roots(run)
            == ROOTS as u64),
        "[{what}] only {}/{ROOTS} roots completed",
        completed_roots(run)
    );
    // At-least-once: replays may duplicate, but every sequence arrived.
    assert!(
        run.sink.count() >= ROOTS as u64,
        "[{what}] sink saw {} < {ROOTS} — an acked tuple was lost",
        run.sink.count()
    );
    run.cluster.shutdown();
}

#[test]
fn clean_baseline_completes() {
    let run = launch(FaultPlan::clean(chaos_seed()));
    assert_recovers(&run, "baseline");
}

#[test]
fn recovers_from_frame_drops() {
    let run = launch(FaultPlan::symmetric(
        chaos_seed(),
        FaultSpec::CLEAN.dropping(0.05),
    ));
    assert_recovers(&run, "drop");
}

#[test]
fn recovers_from_added_delay() {
    let run = launch(FaultPlan::symmetric(
        chaos_seed(),
        FaultSpec::CLEAN.delaying(Duration::from_millis(25)),
    ));
    assert_recovers(&run, "delay");
}

#[test]
fn recovers_from_duplication() {
    let run = launch(FaultPlan::symmetric(
        chaos_seed(),
        FaultSpec::CLEAN.duplicating(0.10),
    ));
    assert_recovers(&run, "duplicate");
}

#[test]
fn recovers_from_corrupt_bytes() {
    let run = launch(FaultPlan::symmetric(
        chaos_seed(),
        FaultSpec::CLEAN.corrupting(0.05),
    ));
    assert_recovers(&run, "corrupt");
}

#[test]
fn recovers_after_a_stall_heals() {
    // Start stalled in both directions: cross-host traffic is withheld
    // (not dropped, not failed — the nastiest case for liveness).
    let seed = chaos_seed();
    let run = launch(FaultPlan::symmetric(seed, FaultSpec::CLEAN.stalled()));
    // Let the system run into the stall, then heal every edge at runtime.
    std::thread::sleep(Duration::from_secs(2));
    assert!(
        completed_roots(&run) < ROOTS as u64,
        "stall had no effect — the topology never crossed hosts"
    );
    for from in 0..2u32 {
        for to in 0..2u32 {
            if from != to {
                run.cluster
                    .chaos_handle(HostId(from), HostId(to))
                    .expect("chaos handle")
                    .heal();
            }
        }
    }
    assert_recovers(&run, "stall-heal");
}

/// Sentences for the failover run: enough that both the armed controller
/// kill and the worker crash land mid-stream.
const FAILOVER_ROOTS: i64 = 600;

/// The PR-10 acceptance run: a 2-replica control plane loses its leader
/// (seeded `KillSpec::controller` through `with_chaos`) while a worker
/// crash has a recovery re-steer in flight. Required outcome:
///
/// * the switches keep forwarding *headless* for the whole leaderless
///   window (nonzero throughput with no leader),
/// * a new leader is elected (term bump) and re-installs the rule ledger,
/// * the in-flight recovery completes against the successor, and the
///   word counts converge to the exact recomputed ground truth,
/// * detect → elect → resync stays under the heartbeat timeout,
/// * all of it deterministic under the printed `CHAOS_SEED`.
#[test]
fn controller_failover_resyncs_rules_and_completes_inflight_recovery() {
    let seed = chaos_seed();
    let expected = expected_word_counts(seed, FAILOVER_ROOTS);
    let mut reg = ComponentRegistry::new();
    let (_sink, agg) = register_standard(&mut reg, 16, 4);
    register_replay_spout(&mut reg, seed, 4, FAILOVER_ROOTS);
    // The leader kill is armed through the ordinary chaos plan, so the
    // victim timing derives from the seed like every other kill class.
    let plan = FaultPlan::clean(seed).with_kill(KillSpec::controller(Duration::from_millis(600)));
    let mut config = TyphoonConfig::new(2)
        .with_batch_size(4)
        .with_acking(Duration::from_secs(2), 64)
        .with_checkpoints(Duration::from_millis(100))
        .with_recovery(HEARTBEAT_TIMEOUT)
        .with_chaos(plan)
        .with_controller_replicas(2);
    // Widen the leaderless window so headless forwarding is observable.
    config.controller_session_timeout = Duration::from_millis(900);
    config.slots_per_host = 8;
    config.scheduler = SchedulerKind::RoundRobin;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    // Registered on *every* replica: the successor must detect too.
    cluster.add_control_app(|| Box::new(FaultDetector::new()));
    let handle = cluster
        .submit(recovery_word_count_topology(2, 2))
        .expect("submit");
    let plane = cluster.control_plane().clone();
    let roots = || {
        handle
            .tasks_of("input")
            .first()
            .and_then(|&t| handle.worker(t))
            .map(|w| w.registry.snapshot().counter("acks.completed"))
            .unwrap_or(0)
    };
    let killed_controllers = || {
        cluster
            .cluster_chaos()
            .map(|h| {
                h.stats()
                    .named()
                    .into_iter()
                    .find(|(n, _)| *n == "chaos.killed_controllers")
                    .map(|(_, v)| v)
                    .unwrap_or(0)
            })
            .unwrap_or(0)
    };
    // Frames actually looked up by the datapaths — the direct measure of
    // forwarding (root completions can stall while a bolt is down, frame
    // processing must not).
    let frames = || {
        (0..2u32)
            .filter_map(|h| cluster.switch(HostId(h)))
            .map(|s| {
                let c = s.cache_stats();
                c.hits + c.negative_hits + c.misses
            })
            .sum::<u64>()
    };

    assert_eq!(plane.term(), 1, "boot election did not settle at term 1");
    assert!(
        wait_until(Duration::from_secs(90), || killed_controllers() == 1),
        "the armed controller kill never executed"
    );
    let killed_at = Instant::now();
    let before_kill = frames();

    // Leaderless window opens. Crash a stateful bolt NOW, so the recovery
    // re-steer is in flight across the failover. The victim derivation
    // matches the worker kill class: sorted stateful tasks, seed-indexed.
    let mut stateful = handle.tasks_of("count");
    stateful.sort_unstable();
    let victim = stateful[seed as usize % stateful.len()];
    handle.crash_task(victim).expect("crash worker");

    // Wait out the failover, sampling throughput while no leader exists:
    // the switches must keep forwarding on their installed rules.
    let mut headless_frames = before_kill;
    assert!(
        wait_until(Duration::from_secs(90), || {
            if plane.leader_name().is_none() {
                headless_frames = frames();
            }
            // The term is reserved before re-sync; the leader is only
            // *published* once the ledger is re-installed and fenced.
            plane.term() >= 2 && plane.leader_name().is_some()
        }),
        "no successor leader was ever elected"
    );
    let failover_wall = killed_at.elapsed();
    assert!(
        headless_frames > before_kill,
        "no frame was forwarded during the leaderless window ({before_kill} before, \
         {headless_frames} while headless) — the switches did not run headless"
    );
    assert!(
        failover_wall < HEARTBEAT_TIMEOUT,
        "failover (detect -> elect -> resync) took {failover_wall:?}, \
         longer than the heartbeat timeout"
    );

    // The successor re-installed the persisted ledger, not an empty table.
    let snap = plane.registry().snapshot();
    assert_eq!(snap.counter("controller.ha.failovers"), 1);
    assert_eq!(snap.counter("controller.ha.elections"), 2);
    assert!(
        snap.gauge("controller.ha.resync_rules") >= 1,
        "successor re-synced no rules"
    );
    assert!(
        snap.gauge("controller.ha.failover_ms") < HEARTBEAT_TIMEOUT.as_millis() as i64,
        "failover_ms over budget: {}",
        snap.gauge("controller.ha.failover_ms")
    );
    assert!(
        snap.gauge("controller.ha.headless_ms") > 0,
        "switches never reported a headless window"
    );

    // The in-flight recovery must complete against the successor leader
    // and the counts must converge to the exact recomputed ground truth.
    assert!(
        wait_until(Duration::from_secs(90), || {
            cluster
                .recovery()
                .map(|r| r.registry().snapshot().counter("recovery.recovered"))
                .unwrap_or(0)
                >= 1
        }),
        "the in-flight recovery never completed after failover"
    );
    let exact = wait_until(Duration::from_secs(90), || {
        roots() >= FAILOVER_ROOTS as u64 && *agg.counts.lock() == expected
    });
    if !exact {
        let got: HashMap<String, i64> = agg.counts.lock().clone();
        let mut diff: Vec<String> = expected
            .iter()
            .filter(|(w, want)| got.get(*w).copied().unwrap_or(0) != **want)
            .map(|(w, want)| format!("{w}: got {}, want {want}", got.get(w).copied().unwrap_or(0)))
            .collect();
        diff.sort();
        panic!(
            "[controller-failover] counts never converged ({}/{FAILOVER_ROOTS} roots): {}",
            roots(),
            diff.join("; ")
        );
    }
    cluster.shutdown();
}

#[test]
fn partition_surfaces_as_typed_fault_within_heartbeat_timeout() {
    // Healthy start, then a hard partition of the host link mid-run.
    let run = launch(FaultPlan::clean(chaos_seed()));
    assert!(
        wait_until(Duration::from_secs(30), || run.sink.count() > 0),
        "no traffic before the partition"
    );
    let partitioned = Instant::now();
    for from in 0..2u32 {
        for to in 0..2u32 {
            if from != to {
                run.cluster
                    .chaos_handle(HostId(from), HostId(to))
                    .expect("chaos handle")
                    .set_plan(FaultPlan::symmetric(1, FaultSpec::CLEAN.partitioned()));
            }
        }
    }
    // The typed failure path: each switch tears its tunnel down, reports a
    // tunnel-peer PortStatus delete, and the fault detector records the
    // link fault in the coordinator — all inside the heartbeat timeout.
    assert!(
        wait_until(HEARTBEAT_TIMEOUT, || {
            (0..2u32).all(|h| {
                run.cluster
                    .switch(HostId(h))
                    .map(|s| s.tunnel_down_count() >= 1)
                    .unwrap_or(false)
            })
        }),
        "switches never tore the partitioned tunnels down"
    );
    assert!(
        wait_until(HEARTBEAT_TIMEOUT, || {
            let coord = run.cluster.global().coordinator();
            coord.exists(&format!("{TUNNEL_FAULTS}/host-0-to-1"))
                || coord.exists(&format!("{TUNNEL_FAULTS}/host-1-to-0"))
        }),
        "fault detector never recorded the link fault"
    );
    assert!(
        partitioned.elapsed() < HEARTBEAT_TIMEOUT * 2,
        "typed failure took longer than the heartbeat budget"
    );
    // Shutdown must stay clean — no hang with the fabric partitioned.
    run.cluster.shutdown();
}
