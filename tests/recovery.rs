//! Crash-recovery suite: the §4 claim end-to-end. A seeded chaos kill
//! takes out a stateful bolt's worker (or its whole host) mid-run on a
//! 2-host word-count topology; the cluster must bring the task back by
//! itself — fault record → re-schedule onto a surviving slot → flow-rule
//! re-steer → restart + checkpoint restore → replay — and the final word
//! counts must *exactly* match a no-fault run of the same seed.
//!
//! Exactness is checkable because the workload source is pure: sentence
//! `i` is a function of `(seed, i)` only, so the expected counts can be
//! recomputed directly and compared against both the no-fault baseline
//! and the post-recovery aggregator state.
//!
//! All randomness (including the kill victim) derives from one seed, so a
//! failing run replays exactly:
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test --test recovery
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};
use typhoon::controller::apps::FaultDetector;
use typhoon::core::SchedulerKind;
use typhoon::net::{FaultPlan, KillSpec};
use typhoon::prelude::*;
use typhoon_bench::workloads::{
    expected_word_counts, recovery_word_count_topology, register_replay_spout, register_standard,
    AggState,
};
use typhoon_model::ComponentRegistry;

/// Heartbeat timeout. With SDN port-status detection enabled the whole
/// recovery (detect → re-steer → restart → restore → replay kick-off)
/// must finish well inside it — the Fig. 10 claim.
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(5);

/// Sentences per run: large enough that the armed kill lands mid-stream.
const ROOTS: i64 = 600;

/// Spout batch size.
const BATCH: usize = 4;

/// Outer bound on any wait: nothing may hang.
const BOUND: Duration = Duration::from_secs(90);

fn chaos_seed() -> u64 {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xc4a0_5eed);
    // Captured output is shown on failure: this is the replay handle.
    println!("CHAOS_SEED={seed}");
    seed
}

/// Ground truth, recomputed from the pure sentence function: the exact
/// word counts any run — faulty or not — must converge to.
fn expected_counts(seed: u64) -> HashMap<String, i64> {
    expected_word_counts(seed, ROOTS)
}

struct RecoveryRun {
    cluster: TyphoonCluster,
    handle: TyphoonTopologyHandle,
    agg: AggState,
}

/// Boots a 2-host cluster with checkpointing, the recovery manager and an
/// optionally armed seeded kill, then submits the replayable word-count
/// topology. Round-robin placement spreads the pipeline across both hosts
/// (so the kill and the recovery genuinely cross hosts) and leaves the
/// spout's host with spare slots for re-scheduling.
fn launch(
    seed: u64,
    kill: Option<KillSpec>,
    sdn_detection: bool,
    heartbeat: Duration,
) -> RecoveryRun {
    let mut reg = ComponentRegistry::new();
    let (_sink, agg) = register_standard(&mut reg, 16, BATCH);
    register_replay_spout(&mut reg, seed, BATCH, ROOTS);
    let mut plan = FaultPlan::clean(seed);
    if let Some(kill) = kill {
        plan = plan.with_kill(kill);
    }
    let mut config = TyphoonConfig::new(2)
        .with_batch_size(BATCH)
        .with_acking(Duration::from_secs(2), 64)
        .with_checkpoints(Duration::from_millis(100))
        .with_recovery(heartbeat)
        .with_chaos(plan);
    config.slots_per_host = 8;
    config.scheduler = SchedulerKind::RoundRobin;
    let cluster = TyphoonCluster::new(config, reg).expect("cluster");
    if sdn_detection {
        cluster.controller().add_app(Box::new(FaultDetector::new()));
    }
    let handle = cluster
        .submit(recovery_word_count_topology(2, 2))
        .expect("submit");
    RecoveryRun {
        cluster,
        handle,
        agg,
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + timeout;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

fn completed_roots(run: &RecoveryRun) -> u64 {
    run.handle
        .tasks_of("input")
        .first()
        .and_then(|&t| run.handle.worker(t))
        .map(|w| w.registry.snapshot().counter("acks.completed"))
        .unwrap_or(0)
}

fn chaos_stat(run: &RecoveryRun, name: &str) -> u64 {
    run.cluster
        .cluster_chaos()
        .map(|h| {
            h.stats()
                .named()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v)
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

fn recovery_stat(run: &RecoveryRun, name: &str) -> u64 {
    run.cluster
        .recovery()
        .map(|r| r.registry().snapshot().counter(name))
        .unwrap_or(0)
}

fn counts(run: &RecoveryRun) -> HashMap<String, i64> {
    run.agg.counts.lock().clone()
}

/// Asserts the aggregator converged to exactly `expected`, with a useful
/// diff on failure.
fn assert_exact(run: &RecoveryRun, expected: &HashMap<String, i64>, what: &str) {
    let converged = wait_until(BOUND, || {
        completed_roots(run) >= ROOTS as u64 && counts(run) == *expected
    });
    if !converged {
        let got = counts(run);
        let mut diff: Vec<String> = Vec::new();
        for (word, want) in expected {
            let have = got.get(word).copied().unwrap_or(0);
            if have != *want {
                diff.push(format!("{word}: got {have}, want {want}"));
            }
        }
        for word in got.keys() {
            if !expected.contains_key(word) {
                diff.push(format!("{word}: unexpected word"));
            }
        }
        diff.sort();
        panic!(
            "[{what}] counts never converged ({}/{ROOTS} roots complete); {} words off: {}",
            completed_roots(run),
            diff.len(),
            diff.join("; ")
        );
    }
}

#[test]
fn no_fault_baseline_matches_recomputed_counts() {
    // The harness itself: with no kill armed, the topology must converge
    // to the recomputed ground truth (proves the exactness yardstick the
    // fault runs are judged against).
    let seed = chaos_seed();
    let expected = expected_counts(seed);
    let run = launch(seed, None, true, HEARTBEAT_TIMEOUT);
    assert_exact(&run, &expected, "baseline");
    assert_eq!(chaos_stat(&run, "chaos.killed_workers"), 0);
    assert!(run
        .cluster
        .recovery()
        .expect("recovery manager")
        .reports()
        .is_empty());
    run.cluster.shutdown();
}

#[test]
fn worker_kill_recovers_to_exact_counts_within_heartbeat() {
    let seed = chaos_seed();
    let expected = expected_counts(seed);
    let run = launch(
        seed,
        Some(KillSpec::worker(Duration::from_millis(300))),
        true,
        HEARTBEAT_TIMEOUT,
    );
    // The armed kill executes exactly once.
    assert!(
        wait_until(BOUND, || chaos_stat(&run, "chaos.killed_workers") == 1),
        "the armed worker kill never executed"
    );
    // With SDN port-status detection installed, the whole recovery —
    // detection, re-scheduling, restart, checkpoint restore, replay
    // kick-off — completes inside the heartbeat timeout the fallback
    // path would still be sleeping through.
    assert!(
        wait_until(HEARTBEAT_TIMEOUT, || recovery_stat(
            &run,
            "recovery.recovered"
        ) >= 1),
        "recovery did not complete within the heartbeat timeout"
    );
    assert_exact(&run, &expected, "worker-kill");

    // The victim is seed-derived: stateful bolt tasks, sorted, seed-indexed
    // — so a fixed CHAOS_SEED reproduces the identical kill and the report
    // names it.
    let mut stateful = run.handle.tasks_of("count");
    stateful.sort_unstable();
    let victim = stateful[seed as usize % stateful.len()];
    let reports = run.cluster.recovery().expect("recovery manager").reports();
    assert!(!reports.is_empty(), "no recovery report recorded");
    assert_eq!(reports[0].task, victim, "kill victim was not seed-derived");
    assert_eq!(reports[0].node, "count");
    assert!(
        reports[0].total < HEARTBEAT_TIMEOUT,
        "recovery took {:?}, longer than the heartbeat timeout",
        reports[0].total
    );
    run.cluster.shutdown();
}

#[test]
fn host_kill_recovers_to_exact_counts() {
    // The big hammer: the whole SimHost dies — every worker thread on it
    // crashes at once, only the switch substrate stays up. All its tasks
    // (a split, a count partition and the aggregator) must come back on
    // the surviving host and the counts must still be exact.
    let seed = chaos_seed();
    let expected = expected_counts(seed);
    let run = launch(
        seed,
        Some(KillSpec::host(Duration::from_millis(300))),
        true,
        HEARTBEAT_TIMEOUT,
    );
    assert!(
        wait_until(BOUND, || chaos_stat(&run, "chaos.killed_hosts") == 1),
        "the armed host kill never executed"
    );
    assert!(
        wait_until(BOUND, || recovery_stat(&run, "recovery.recovered") >= 1),
        "no task was ever recovered"
    );
    assert_exact(&run, &expected, "host-kill");
    let reports = run.cluster.recovery().expect("recovery manager").reports();
    assert!(
        !reports.is_empty(),
        "host kill produced no recovery reports"
    );
    // Every recovered task landed on a live host.
    for r in &reports {
        let agent = run.cluster.agent(r.host).expect("agent");
        assert!(agent.is_alive(), "task recovered onto the dead host");
    }
    run.cluster.shutdown();
}

#[test]
fn heartbeat_fallback_recovers_without_sdn_detection() {
    // Fig. 10's baseline: no fault-detector app, so the dead worker is
    // only found by the recovery manager's heartbeat scan — detection
    // waits out the full timeout instead of reacting to the port event,
    // but recovery (and exactness) must still hold.
    let seed = chaos_seed();
    let expected = expected_counts(seed);
    let heartbeat = Duration::from_secs(2);
    let run = launch(
        seed,
        Some(KillSpec::worker(Duration::from_millis(300))),
        false,
        heartbeat,
    );
    assert!(
        wait_until(BOUND, || chaos_stat(&run, "chaos.killed_workers") == 1),
        "the armed worker kill never executed"
    );
    let killed_at = Instant::now();
    assert!(
        wait_until(BOUND, || recovery_stat(&run, "recovery.recovered") >= 1),
        "heartbeat fallback never recovered the task"
    );
    let detection = killed_at.elapsed();
    assert!(
        recovery_stat(&run, "recovery.heartbeat_detected") >= 1,
        "recovery did not come from the heartbeat path"
    );
    // The fallback is necessarily slower: it cannot act before the
    // heartbeat timeout expires (the SDN path acts in milliseconds).
    assert!(
        detection >= heartbeat / 2,
        "heartbeat recovery after only {detection:?} — suspiciously fast for a {heartbeat:?} timeout"
    );
    assert_exact(&run, &expected, "heartbeat-fallback");
    run.cluster.shutdown();
}
