//! Cross-layer integration: the SDN control-plane applications of §4
//! driving real topology changes end to end — fault detection via
//! PortStatus, auto-scaling via METRIC_REQ/RESP + coordinator hand-off,
//! and the command API through the manager loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon::controller::apps::{AutoScaler, AutoScalerConfig, FaultDetector};
use typhoon::prelude::*;

struct FastSpout;

impl Spout for FastSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for i in 0..8 {
            out.emit(vec![Value::Int(i)]);
        }
        true
    }
}

/// A paced spout: ~8k tuples/sec — a modest, sustained overload for the
/// auto-scaler test (control tuples share the data ring, so queues must
/// grow slowly enough for METRIC_REQ round-trips to stay timely, exactly
/// the §8 batching/queue-sizing discussion).
struct PacedSpout;

impl Spout for PacedSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for i in 0..8 {
            out.emit(vec![Value::Int(i)]);
        }
        std::thread::sleep(Duration::from_millis(1));
        true
    }
}

/// A relay with a configurable service delay (to build queue depth).
struct SlowRelay {
    delay: Duration,
}

impl Bolt for SlowRelay {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        out.emit(input.values);
    }
}

struct CountSink {
    seen: Arc<AtomicU64>,
}

impl Bolt for CountSink {
    fn execute(&mut self, _input: Tuple, _out: &mut dyn Emitter) {
        self.seen.fetch_add(1, Ordering::Relaxed);
    }
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn pipeline(mid_parallelism: usize) -> LogicalTopology {
    LogicalTopology::builder("xl")
        .spout("src", "fast", 1, Fields::new(["n"]))
        .bolt("mid", "relay", mid_parallelism, Fields::new(["n"]))
        .bolt("out", "sink", 1, Fields::new(["n"]))
        .edge("src", "mid", Grouping::Shuffle)
        .edge("mid", "out", Grouping::Global)
        .build()
        .unwrap()
}

#[test]
fn fault_detector_reroutes_around_crashed_worker() {
    let seen = Arc::new(AtomicU64::new(0));
    let mut reg = ComponentRegistry::new();
    reg.register_spout("fast", || FastSpout);
    reg.register_bolt("relay", || SlowRelay {
        delay: Duration::ZERO,
    });
    let s = seen.clone();
    reg.register_bolt("sink", move || CountSink { seen: s.clone() });

    let cluster = TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(10), reg).unwrap();
    cluster.controller().add_app(Box::new(FaultDetector::new()));
    let h = cluster.submit(pipeline(2)).unwrap();
    assert!(wait_until(Duration::from_secs(10), || seen
        .load(Ordering::Relaxed)
        > 0));

    // Crash one mid worker abruptly: the switch discovers the dead port.
    let victim = h.tasks_of("mid")[0];
    h.crash_task(victim).unwrap();

    // The pipeline keeps flowing through the survivor, with the fault
    // recorded in the coordinator by the detector.
    let before = seen.load(Ordering::Relaxed);
    assert!(
        wait_until(Duration::from_secs(10), || seen.load(Ordering::Relaxed)
            > before + 10_000),
        "pipeline stalled after the crash"
    );
    let coord = cluster.global().coordinator();
    assert!(
        wait_until(Duration::from_secs(5), || coord
            .exists(&format!("/typhoon/faults/xl/task-{}", victim.0))),
        "fault never recorded"
    );
    cluster.shutdown();
}

#[test]
fn auto_scaler_grows_overloaded_node_end_to_end() {
    let seen = Arc::new(AtomicU64::new(0));
    let mut reg = ComponentRegistry::new();
    reg.register_spout("fast", || PacedSpout);
    // Slow relays so their ingress rings actually queue up.
    reg.register_bolt("relay", || SlowRelay {
        delay: Duration::from_micros(500),
    });
    let s = seen.clone();
    reg.register_bolt("sink", move || CountSink { seen: s.clone() });

    let mut config = TyphoonConfig::new(1).with_batch_size(10);
    config.controller_tick = Duration::from_millis(100);
    config.ring_capacity = 1 << 15;
    let cluster = TyphoonCluster::new(config, reg).unwrap();
    cluster
        .controller()
        .add_app(Box::new(AutoScaler::new(AutoScalerConfig {
            topology: "xl".into(),
            node: "mid".into(),
            metric: "queue.depth".into(),
            high_watermark: 10,
            low_watermark: 0,
            min_parallelism: 1,
            max_parallelism: 2,
            cooldown: Duration::from_secs(30),
        })));
    let h = cluster.submit(pipeline(1)).unwrap();
    assert_eq!(h.tasks_of("mid").len(), 1);
    // Full loop: controller polls metrics over the data plane, the scaler
    // submits a reconfig to the coordinator, the manager loop applies it.
    assert!(
        wait_until(Duration::from_secs(30), || h.tasks_of("mid").len() == 2),
        "auto-scaler never scaled mid up"
    );
    // The new worker participates.
    let new_task = *h.tasks_of("mid").last().unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            h.worker(new_task)
                .map(|w| w.registry.snapshot().counter("tuples.received") > 0)
                .unwrap_or(false)
        }),
        "scaled-up worker idle"
    );
    cluster.shutdown();
}

#[test]
fn command_server_drives_manager_loop() {
    use std::io::{BufRead, BufReader, Write};
    let seen = Arc::new(AtomicU64::new(0));
    let mut reg = ComponentRegistry::new();
    reg.register_spout("fast", || FastSpout);
    reg.register_bolt("relay", || SlowRelay {
        delay: Duration::ZERO,
    });
    let s = seen.clone();
    reg.register_bolt("sink", move || CountSink { seen: s.clone() });
    let cluster = TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(10), reg).unwrap();
    let h = cluster.submit(pipeline(2)).unwrap();
    let server =
        typhoon::controller::rest::CommandServer::start(cluster.global().clone(), 0).unwrap();

    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer
        .write_all(b"RECONFIG xl PARALLELISM mid 4\n")
        .unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert_eq!(resp.trim(), "OK submitted");
    assert!(
        wait_until(Duration::from_secs(10), || h.tasks_of("mid").len() == 4),
        "command never applied; mid tasks = {:?}",
        h.tasks_of("mid")
    );
    cluster.shutdown();
}
