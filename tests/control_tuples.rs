//! Table 2 control tuples end to end: the controller injects
//! `BATCH_SIZE`, `INPUT_RATE`, `DEACTIVATE`/`ACTIVATE` and `METRIC_REQ`
//! into running workers over the data plane, and observes the effects.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon::controller::ControlTuple;
use typhoon::prelude::*;

struct FastSpout;

impl Spout for FastSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for i in 0..8 {
            out.emit(vec![Value::Int(i)]);
        }
        true
    }
}

struct CountSink {
    seen: Arc<AtomicU64>,
}

impl Bolt for CountSink {
    fn execute(&mut self, _input: Tuple, _out: &mut dyn Emitter) {
        self.seen.fetch_add(1, Ordering::Relaxed);
    }
}

fn setup() -> (TyphoonCluster, TyphoonTopologyHandle, Arc<AtomicU64>) {
    let seen = Arc::new(AtomicU64::new(0));
    let mut reg = ComponentRegistry::new();
    reg.register_spout("fast", || FastSpout);
    let s = seen.clone();
    reg.register_bolt("sink", move || CountSink { seen: s.clone() });
    let topo = LogicalTopology::builder("knobs")
        .spout("src", "fast", 1, Fields::new(["n"]))
        .bolt("out", "sink", 1, Fields::new(["n"]))
        .edge("src", "out", Grouping::Global)
        .build()
        .unwrap();
    let cluster = TyphoonCluster::new(TyphoonConfig::new(1).with_batch_size(100), reg).unwrap();
    let handle = cluster.submit(topo).unwrap();
    (cluster, handle, seen)
}

fn rate_over(seen: &AtomicU64, window: Duration) -> f64 {
    let n0 = seen.load(Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(window);
    (seen.load(Ordering::Relaxed) - n0) as f64 / t0.elapsed().as_secs_f64()
}

#[test]
fn input_rate_control_tuple_caps_the_spout() {
    let (cluster, handle, seen) = setup();
    let spout = handle.tasks_of("src")[0];
    let unlimited = rate_over(&seen, Duration::from_secs(2));
    assert!(unlimited > 50_000.0, "baseline too slow: {unlimited}");
    assert!(cluster.controller().send_control(
        handle.app(),
        spout,
        &ControlTuple::InputRate {
            tuples_per_sec: 10_000
        },
    ));
    std::thread::sleep(Duration::from_millis(300)); // tuple in flight
    let capped = rate_over(&seen, Duration::from_secs(2));
    assert!(
        (8_000.0..13_000.0).contains(&capped),
        "cap not applied: {capped} t/s"
    );
    // Lifting the cap (0 = unlimited) restores full speed.
    cluster.controller().send_control(
        handle.app(),
        spout,
        &ControlTuple::InputRate { tuples_per_sec: 0 },
    );
    std::thread::sleep(Duration::from_millis(300));
    let restored = rate_over(&seen, Duration::from_secs(2));
    assert!(restored > capped * 3.0, "cap never lifted: {restored}");
    cluster.shutdown();
}

#[test]
fn deactivate_pauses_and_activate_resumes() {
    let (cluster, handle, seen) = setup();
    let spout = handle.tasks_of("src")[0];
    assert!(rate_over(&seen, Duration::from_secs(1)) > 0.0);
    cluster
        .controller()
        .send_control(handle.app(), spout, &ControlTuple::Deactivate);
    std::thread::sleep(Duration::from_millis(500)); // drain in-flight
    let paused = rate_over(&seen, Duration::from_secs(1));
    assert_eq!(paused, 0.0, "DEACTIVATE did not pause the topology");
    cluster
        .controller()
        .send_control(handle.app(), spout, &ControlTuple::Activate);
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        rate_over(&seen, Duration::from_secs(1)) > 10_000.0,
        "ACTIVATE did not resume"
    );
    cluster.shutdown();
}

#[test]
fn batch_size_control_tuple_retunes_the_io_layer() {
    let (cluster, handle, _seen) = setup();
    let sink = handle.tasks_of("out")[0];
    let worker = handle.worker(sink).unwrap();
    assert!(cluster.controller().send_control(
        handle.app(),
        sink,
        &ControlTuple::BatchSize { size: 7 },
    ));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if worker.registry.snapshot().gauge("io.batch_size") == 7 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "BATCH_SIZE never applied: gauge={}",
            worker.registry.snapshot().gauge("io.batch_size")
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
}

#[test]
fn metric_req_round_trips_through_packet_in() {
    use parking_lot::Mutex;
    use typhoon::controller::{ControlPlaneApp, Controller};
    use typhoon::model::{AppId, TaskId};

    /// Shared log of `(app, task, metrics)` triples seen by the capture app.
    type MetricResponses = Arc<Mutex<Vec<(AppId, TaskId, Vec<(String, i64)>)>>>;

    #[derive(Default)]
    struct Capture {
        responses: MetricResponses,
    }
    impl ControlPlaneApp for Capture {
        fn name(&self) -> &'static str {
            "capture"
        }
        fn on_metric_resp(
            &mut self,
            _ctl: &Controller,
            app: AppId,
            task: TaskId,
            _request_id: u64,
            metrics: &[(String, i64)],
        ) {
            self.responses.lock().push((app, task, metrics.to_vec()));
        }
    }

    let (cluster, handle, _seen) = setup();
    let captured: MetricResponses = Arc::default();
    cluster.controller().add_app(Box::new(Capture {
        responses: captured.clone(),
    }));
    let sink = handle.tasks_of("out")[0];
    cluster.controller().send_control(
        handle.app(),
        sink,
        &ControlTuple::MetricReq { request_id: 42 },
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        {
            let got = captured.lock();
            if let Some((app, task, metrics)) = got.first() {
                assert_eq!(*app, handle.app());
                assert_eq!(*task, sink);
                assert!(metrics.iter().any(|(k, _)| k == "queue.depth"));
                assert!(metrics.iter().any(|(k, _)| k == "tuples.received"));
                break;
            }
        }
        assert!(Instant::now() < deadline, "METRIC_RESP never arrived");
        std::thread::sleep(Duration::from_millis(10));
    }
    cluster.shutdown();
}
