//! The §8 extension: pause-and-resume worker relocation.
//!
//! "In case of relocating a stateful worker from one host to another,
//! Typhoon can simply 'pause-and-resume' the worker via control tuples
//! (e.g., SIGNAL and (DE)ACTIVATE tuples), while its state remains in an
//! external storage." The relocated worker's replacement lands on the
//! target host, predecessors are rerouted, no tuple is lost, and
//! externally-stored state survives the move.

use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon::kv::KvStore;
use typhoon::model::HostId;
use typhoon::prelude::*;

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

struct Seq {
    next: i64,
    limit: i64,
}

impl Spout for Seq {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for _ in 0..4 {
            if self.next >= self.limit {
                return false;
            }
            out.emit(vec![Value::Int(self.next)]);
            self.next += 1;
        }
        true
    }
}

/// A stateful counter whose durable state lives in the external store
/// (`typhoon-kv` plays Redis, exactly the §8 deployment the paper
/// envisions). The in-memory batch is flushed to the store on SIGNAL.
struct DurableCounter {
    kv: Arc<KvStore>,
    pending: i64,
}

impl Bolt for DurableCounter {
    fn execute(&mut self, input: Tuple, out: &mut dyn Emitter) {
        if input.get(0).and_then(Value::as_int).is_some() {
            self.pending += 1;
            // Write through frequently; keep a small in-memory batch.
            if self.pending >= 100 {
                self.kv.hincr("relocation-counter", "n", self.pending);
                self.pending = 0;
            }
            out.emit(input.values);
        }
    }

    fn on_signal(&mut self, _out: &mut dyn Emitter) {
        // Pause-and-resume: flush the in-memory remainder to the store.
        if self.pending > 0 {
            self.kv.hincr("relocation-counter", "n", self.pending);
            self.pending = 0;
        }
    }

    fn is_stateful(&self) -> bool {
        true
    }
}

#[derive(Clone, Default)]
struct Seen {
    seqs: Arc<parking_lot::Mutex<Vec<i64>>>,
}

struct Collect {
    seen: Seen,
}

impl Bolt for Collect {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let Some(n) = input.get(0).and_then(Value::as_int) {
            self.seen.seqs.lock().push(n);
        }
    }
}

const LIMIT: i64 = 100_000;

#[test]
fn relocation_moves_the_worker_without_losing_tuples_or_state() {
    let kv = Arc::new(KvStore::new());
    let seen = Seen::default();
    let mut reg = ComponentRegistry::new();
    reg.register_spout("seq", || Seq {
        next: 0,
        limit: LIMIT,
    });
    let kv2 = kv.clone();
    reg.register_bolt("durable", move || DurableCounter {
        kv: kv2.clone(),
        pending: 0,
    });
    let s = seen.clone();
    reg.register_bolt("collect", move || Collect { seen: s.clone() });

    let topo = LogicalTopology::builder("reloc")
        .spout("src", "seq", 1, Fields::new(["n"]))
        .bolt_with_state("mid", "durable", 1, Fields::new(["n"]), true)
        .bolt("out", "collect", 1, Fields::new(["n"]))
        .edge("src", "mid", Grouping::Global)
        .edge("mid", "out", Grouping::Global)
        .build()
        .unwrap();

    let mut config = TyphoonConfig::new(2).with_batch_size(10);
    config.slots_per_host = 8;
    let cluster = TyphoonCluster::new(config, reg).unwrap();
    let handle = cluster.submit(topo).unwrap();

    // Everything packs on host 0 under the locality scheduler.
    let before = handle.physical().unwrap();
    let mid_task = handle.tasks_of("mid")[0];
    assert_eq!(before.assignment(mid_task).unwrap().host, HostId(0));
    assert!(wait_until(Duration::from_secs(10), || !seen
        .seqs
        .lock()
        .is_empty()));

    // Relocate mid to host 1, mid-stream.
    handle
        .reconfigure(ReconfigRequest::single(
            "reloc",
            ReconfigOp::Relocate {
                task: mid_task,
                target: HostId(1),
            },
        ))
        .unwrap();

    // Placement moved: a fresh task ID on the target host.
    let after = handle.physical().unwrap();
    let new_mid = handle.tasks_of("mid")[0];
    assert_ne!(new_mid, mid_task, "task IDs are never reused");
    assert_eq!(after.assignment(new_mid).unwrap().host, HostId(1));

    // The stream completes without losing a single tuple.
    assert!(
        wait_until(Duration::from_secs(30), || seen.seqs.lock().len()
            >= LIMIT as usize),
        "only {} of {LIMIT} arrived",
        seen.seqs.lock().len()
    );
    let mut seqs = seen.seqs.lock().clone();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), LIMIT as usize, "tuples lost across relocation");

    // Externally-stored state survived the move: the SIGNAL flush plus the
    // replacement's write-throughs account for every tuple processed.
    assert!(
        wait_until(Duration::from_secs(10), || {
            kv.hget("relocation-counter", "n").unwrap_or(0) >= LIMIT - 100
        }),
        "durable count {} too low",
        kv.hget("relocation-counter", "n").unwrap_or(0)
    );
    cluster.shutdown();
}

#[test]
fn relocation_via_the_command_api() {
    use std::io::{BufRead, BufReader, Write};
    let kv = Arc::new(KvStore::new());
    let seen = Seen::default();
    let mut reg = ComponentRegistry::new();
    reg.register_spout("seq", || Seq {
        next: 0,
        limit: i64::MAX,
    });
    let kv2 = kv.clone();
    reg.register_bolt("durable", move || DurableCounter {
        kv: kv2.clone(),
        pending: 0,
    });
    let s = seen.clone();
    reg.register_bolt("collect", move || Collect { seen: s.clone() });
    let topo = LogicalTopology::builder("reloc2")
        .spout("src", "seq", 1, Fields::new(["n"]))
        .bolt_with_state("mid", "durable", 1, Fields::new(["n"]), true)
        .bolt("out", "collect", 1, Fields::new(["n"]))
        .edge("src", "mid", Grouping::Global)
        .edge("mid", "out", Grouping::Global)
        .build()
        .unwrap();
    let mut config = TyphoonConfig::new(2).with_batch_size(10);
    config.slots_per_host = 8;
    let cluster = TyphoonCluster::new(config, reg).unwrap();
    let handle = cluster.submit(topo).unwrap();
    let mid_task = handle.tasks_of("mid")[0];

    let server =
        typhoon::controller::rest::CommandServer::start(cluster.global().clone(), 0).unwrap();
    let stream = std::net::TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer
        .write_all(format!("RECONFIG reloc2 RELOCATE {} 1\n", mid_task.0).as_bytes())
        .unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert_eq!(resp.trim(), "OK submitted");
    assert!(
        wait_until(Duration::from_secs(10), || {
            handle
                .physical()
                .map(|p| {
                    p.tasks_of("mid")
                        .first()
                        .and_then(|&t| p.assignment(t).map(|a| a.host == HostId(1)))
                        .unwrap_or(false)
                })
                .unwrap_or(false)
        }),
        "relocation never applied via command API"
    );
    cluster.shutdown();
}
