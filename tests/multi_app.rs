//! Multiple concurrent applications on one Typhoon cluster: worker MACs
//! carry the application-ID prefix (Fig. 5), switch rules are disjoint per
//! app, and agent bookkeeping is keyed by (app, task) — so two topologies
//! with numerically identical task IDs never interfere.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon::prelude::*;

struct ConstSpout {
    value: i64,
    remaining: i64,
}

impl Spout for ConstSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        out.emit(vec![Value::Int(self.value)]);
        true
    }
}

#[derive(Clone, Default)]
struct Sums {
    by_value: Arc<Mutex<HashMap<i64, i64>>>,
}

struct SumSink {
    sums: Sums,
}

impl Bolt for SumSink {
    fn execute(&mut self, input: Tuple, _out: &mut dyn Emitter) {
        if let Some(v) = input.get(0).and_then(Value::as_int) {
            *self.sums.by_value.lock().entry(v).or_insert(0) += 1;
        }
    }
}

fn topo(name: &str, spout: &str) -> LogicalTopology {
    LogicalTopology::builder(name)
        .spout("src", spout, 1, Fields::new(["v"]))
        .bolt("out", "sum-sink", 1, Fields::new(["v"]))
        .edge("src", "out", Grouping::Global)
        .build()
        .unwrap()
}

#[test]
fn two_applications_share_a_cluster_without_interference() {
    const N: i64 = 2_000;
    let sums = Sums::default();
    let mut reg = ComponentRegistry::new();
    reg.register_spout("a-spout", || ConstSpout {
        value: 1,
        remaining: N,
    });
    reg.register_spout("b-spout", || ConstSpout {
        value: 2,
        remaining: N,
    });
    let s = sums.clone();
    reg.register_bolt("sum-sink", move || SumSink { sums: s.clone() });

    let cluster = TyphoonCluster::new(TyphoonConfig::new(2).with_batch_size(10), reg).unwrap();
    let ha = cluster.submit(topo("app-a", "a-spout")).unwrap();
    let hb = cluster.submit(topo("app-b", "b-spout")).unwrap();
    assert_ne!(ha.app(), hb.app());

    // Both topologies number their tasks from 0; worker lookups and flow
    // rules must still resolve per application.
    assert_eq!(ha.tasks_of("src"), hb.tasks_of("src"));
    assert!(ha.worker(ha.tasks_of("src")[0]).is_some());
    assert!(hb.worker(hb.tasks_of("src")[0]).is_some());

    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        {
            let sums = sums.by_value.lock();
            let a = sums.get(&1).copied().unwrap_or(0);
            let b = sums.get(&2).copied().unwrap_or(0);
            if a == N && b == N {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "incomplete or cross-talk: a={a} b={b} (want {N} each)"
            );
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // Killing one app must not disturb the other.
    ha.kill().unwrap();
    assert!(hb.worker(hb.tasks_of("out")[0]).is_some(), "app-b survives");
    cluster.shutdown();
}
