//! The SDN load-balancer application end to end (§4): an `SdnOffloaded`
//! edge is served by a select group in the switch; the controller app polls
//! downstream queue depths over the data plane and retunes the group's
//! weights so a straggler receives less — "round-robin based load balancing
//! can be unfair or can introduce straggling workers if … the underlying
//! compute cluster is heterogeneous".

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use typhoon::controller::apps::{LoadBalancer, LoadBalancerConfig};
use typhoon::prelude::*;

/// ~6k tuples/sec, paced so control tuples stay timely.
struct PacedSpout;

impl Spout for PacedSpout {
    fn next_batch(&mut self, out: &mut dyn Emitter) -> bool {
        for i in 0..6 {
            out.emit(vec![Value::Int(i)]);
        }
        std::thread::sleep(Duration::from_millis(1));
        true
    }
}

/// Heterogeneous workers from one factory: the first instance is fast, the
/// second is a straggler (fixed 1.5 ms service time ⇒ ~666 tuples/sec).
struct HeteroSink {
    slow: bool,
    processed: Arc<AtomicUsize>,
}

impl Bolt for HeteroSink {
    fn execute(&mut self, _input: Tuple, _out: &mut dyn Emitter) {
        if self.slow {
            std::thread::sleep(Duration::from_micros(1_500));
        }
        self.processed.fetch_add(1, Ordering::Relaxed);
    }
}

fn run(with_lb: bool) -> (usize, usize) {
    let instance = Arc::new(AtomicUsize::new(0));
    let fast = Arc::new(AtomicUsize::new(0));
    let slow = Arc::new(AtomicUsize::new(0));
    let mut reg = ComponentRegistry::new();
    reg.register_spout("paced", || PacedSpout);
    let (i2, f2, s2) = (instance.clone(), fast.clone(), slow.clone());
    reg.register_bolt("hetero", move || {
        let n = i2.fetch_add(1, Ordering::Relaxed);
        HeteroSink {
            slow: n % 2 == 1,
            processed: if n % 2 == 1 { s2.clone() } else { f2.clone() },
        }
    });
    let topology = LogicalTopology::builder("lb")
        .spout("src", "paced", 1, Fields::new(["n"]))
        .bolt("sink", "hetero", 2, Fields::new(["n"]))
        .edge("src", "sink", Grouping::SdnOffloaded)
        .build()
        .unwrap();
    let mut config = TyphoonConfig::new(1).with_batch_size(10);
    config.controller_tick = Duration::from_millis(100);
    config.ring_capacity = 1 << 15;
    let cluster = TyphoonCluster::new(config, reg).unwrap();
    if with_lb {
        cluster
            .controller()
            .add_app(Box::new(LoadBalancer::new(LoadBalancerConfig {
                topology: "lb".into(),
                from: "src".into(),
                to: "sink".into(),
                metric: "queue.depth".into(),
            })));
    }
    let _h = cluster.submit(topology).unwrap();
    // Warm up, then measure a steady window.
    std::thread::sleep(Duration::from_secs(4));
    let (f0, s0) = (fast.load(Ordering::Relaxed), slow.load(Ordering::Relaxed));
    let t0 = Instant::now();
    std::thread::sleep(Duration::from_secs(6));
    let dt = t0.elapsed().as_secs_f64();
    let df = ((fast.load(Ordering::Relaxed) - f0) as f64 / dt) as usize;
    let ds = ((slow.load(Ordering::Relaxed) - s0) as f64 / dt) as usize;
    cluster.shutdown();
    (df, ds)
}

#[test]
fn weighted_groups_shift_load_away_from_the_straggler() {
    // Baseline: equal select-group weights halve the stream; the straggler
    // caps out and the fast worker idles at ~50% of the input.
    let (fast_base, slow_base) = run(false);
    // With the app: weights shift toward the fast worker.
    let (fast_lb, slow_lb) = run(true);
    let total_base = fast_base + slow_base;
    let total_lb = fast_lb + slow_lb;
    println!(
        "baseline fast={fast_base}/s slow={slow_base}/s total={total_base}/s; \
         lb fast={fast_lb}/s slow={slow_lb}/s total={total_lb}/s"
    );
    // The fast worker must take a visibly larger share under the balancer…
    assert!(
        fast_lb as f64 > fast_base as f64 * 1.3,
        "balancer never shifted load: fast {fast_base}/s -> {fast_lb}/s"
    );
    // …and aggregate throughput must improve.
    assert!(
        total_lb as f64 > total_base as f64 * 1.2,
        "no aggregate gain: {total_base}/s -> {total_lb}/s"
    );
    // The straggler keeps a non-zero share (weights floor at 1).
    assert!(slow_lb > 0, "straggler starved");
}
